// Overload-safety and fault-tolerance contracts of the serving runtime
// (DESIGN.md §15). The invariant under test everywhere: every request
// resolves — with scores or with a typed util::Status — and no input,
// fault, or load level crashes the service, strands a future, or breaks
// the bit-identity of *accepted* requests.
//
// 1. Exception barrier: injected scorer/batch throws fail only the
//    affected request/chunk with kInternal; the worker keeps serving and
//    subsequent requests stay bit-identical to a cold model->Score.
// 2. Shutdown: pending promises resolve kUnavailable (never broken),
//    blocked producers unblock, and post-shutdown ops fail fast.
// 3. Input validation: padding/out-of-range POIs, non-finite timestamps
//    and empty candidate lists resolve kInvalidArgument per request.
// 4. Admission control: kRejectNew / kShedOldest / kBlock under a bounded
//    queue, with shed/rejected requests resolved immediately.
// 5. Deadlines + degradation: expired requests resolve kDeadlineExceeded,
//    or serve stale from the resident cached prefix with allow_stale; the
//    fallback path re-checks deadlines before paying for a batch forward.
// 6. Concurrent stress: multi-producer appends/scores/evicts with random
//    deadlines under queue policy x {worker, Pump} grids, plus a
//    Drain()-vs-Enqueue race.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/incremental.h"
#include "core/stisan.h"
#include "data/synthetic.h"
#include "models/san_models.h"
#include "obs/metrics.h"
#include "serve/fault_injector.h"
#include "serve/service.h"
#include "tensor/kernels.h"
#include "util/rng.h"
#include "util/status.h"

namespace stisan {
namespace {

using serve::QueuePolicy;
using serve::RecommendService;
using serve::ScoreResult;
using serve::ServeFaultInjector;
using serve::ServeFaultPlan;
using serve::ServeOptions;

core::StisanOptions TinyStisanOptions() {
  core::StisanOptions opts;
  opts.poi_dim = 8;
  opts.geo.dim = 8;
  opts.geo.fourier_dim = 4;
  opts.num_blocks = 2;
  opts.train.seed = 7;
  opts.use_tape = false;  // K/V-cache tier: cheap incremental appends
  opts.knn_negatives = false;
  return opts;
}

models::SanOptions TinySanOptions() {
  models::SanOptions opts;
  opts.base.dim = 16;
  opts.num_blocks = 2;
  opts.max_seq_len = 32;
  opts.base.train.seed = 11;
  return opts;
}

class ServeRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = data::GenerateSynthetic(data::GowallaLikeConfig(0.08));
    obs::ResetAllForTesting();
  }

  void TearDown() override { kernels::SetNumThreads(1); }

  std::vector<int64_t> PickUsers(size_t min_len, size_t max_users) const {
    std::vector<int64_t> users;
    for (size_t u = 0; u < ds_.user_seqs.size(); ++u) {
      if (ds_.user_seqs[u].size() >= min_len) {
        users.push_back(static_cast<int64_t>(u));
        if (users.size() == max_users) break;
      }
    }
    return users;
  }

  std::vector<int64_t> Candidates(int64_t target, size_t count,
                                  uint64_t seed) const {
    Rng rng(seed);
    std::vector<int64_t> cands{target};
    while (cands.size() < count) {
      const int64_t poi =
          1 + static_cast<int64_t>(rng.UniformInt(
                  static_cast<uint64_t>(ds_.num_pois())));
      if (std::find(cands.begin(), cands.end(), poi) == cands.end()) {
        cands.push_back(poi);
      }
    }
    return cands;
  }

  static std::vector<float> ColdScore(models::SequentialRecommender& model,
                                      const std::vector<data::Visit>& seq,
                                      size_t prefix,
                                      const std::vector<int64_t>& cands) {
    data::EvalInstance inst;
    inst.first_real = 0;
    for (size_t i = 0; i < prefix; ++i) {
      inst.poi.push_back(seq[i].poi);
      inst.t.push_back(seq[i].timestamp);
    }
    return model.Score(inst, cands);
  }

  data::Dataset ds_;
};

// ---------------------------------------------------------------------------
// 1. Exception barrier.
// ---------------------------------------------------------------------------

// Regression for the stranded-futures bug: a throw from the scoring path
// used to kill the worker (the ThreadPool rethrows task exceptions since
// PR 5) and leave every pending future unresolved forever. Now the
// injected throw must fail exactly its own request with kInternal while
// the worker keeps serving, bit-identically, through and after the fault.
TEST_F(ServeRobustnessTest, WorkerSurvivesInjectedScorerThrows) {
  core::StisanModel model(ds_, TinyStisanOptions());
  const auto users = PickUsers(/*min_len=*/8, /*max_users=*/3);
  ASSERT_GE(users.size(), 3u);

  ServeFaultInjector injector;
  ServeFaultPlan plan;
  plan.throw_every_scores = 3;
  injector.SetPlan(plan);

  ServeOptions so;
  so.max_seq_len = 32;
  so.start_worker = true;
  so.fault_injector = &injector;
  RecommendService service(&model, so);

  std::vector<std::future<ScoreResult>> futures;
  std::vector<std::vector<float>> want;
  for (size_t k = 1; k <= 6; ++k) {
    for (int64_t user : users) {
      const auto& seq = ds_.user_seqs[static_cast<size_t>(user)];
      ASSERT_TRUE(service.Append(user, seq[k - 1].poi, seq[k - 1].timestamp)
                      .ok());
      const auto cands = Candidates(seq[k - 1].poi, 15, 77 + user);
      futures.push_back(service.ScoreAsync(user, cands));
      want.push_back(ColdScore(model, seq, k, cands));
    }
  }
  service.Drain();

  size_t failed = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    ScoreResult r = futures[i].get();
    if (r.ok()) {
      EXPECT_EQ(r.scores, want[i]) << "request " << i;
    } else {
      EXPECT_EQ(r.status.code(), StatusCode::kInternal) << r.status.ToString();
      ++failed;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(failed), injector.score_throws());
  EXPECT_GT(failed, 0u);
  EXPECT_EQ(obs::GetCounter("serve/batch_failures").Get(), failed);

  // The worker survived: with the fault plan cleared, everything serves.
  injector.SetPlan(ServeFaultPlan{});
  for (int64_t user : users) {
    const auto& seq = ds_.user_seqs[static_cast<size_t>(user)];
    const auto cands = Candidates(seq[5].poi, 15, 123 + user);
    ScoreResult r = service.Score(user, cands);
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    EXPECT_EQ(r.scores, ColdScore(model, seq, 6, cands));
  }
}

// A throw before a fallback ScoreBatch forward fails exactly that chunk's
// promises; other chunks of the same flush keep their (bit-identical)
// scores.
TEST_F(ServeRobustnessTest, FallbackBatchThrowFailsOnlyItsChunk) {
  models::SasRecModel model(ds_, TinySanOptions());
  const auto users = PickUsers(/*min_len=*/6, /*max_users=*/6);
  ASSERT_EQ(users.size(), 6u);
  const size_t prefix = 5;

  ServeFaultInjector injector;
  ServeFaultPlan plan;
  plan.throw_every_batches = 2;  // second ScoreBatch chunk fails
  injector.SetPlan(plan);

  ServeOptions so;
  so.start_worker = false;
  so.max_batch = 2;  // 6 same-length users -> 3 chunks
  so.fault_injector = &injector;
  RecommendService service(&model, so);

  std::vector<std::future<ScoreResult>> futures;
  std::vector<std::vector<float>> want;
  for (int64_t user : users) {
    const auto& seq = ds_.user_seqs[static_cast<size_t>(user)];
    for (size_t k = 0; k < prefix; ++k) {
      ASSERT_TRUE(service.Append(user, seq[k].poi, seq[k].timestamp).ok());
    }
  }
  for (int64_t user : users) {
    const auto& seq = ds_.user_seqs[static_cast<size_t>(user)];
    const auto cands = Candidates(seq[prefix].poi, 12, 55 + user);
    futures.push_back(service.ScoreAsync(user, cands));
    want.push_back(ColdScore(model, seq, prefix, cands));
  }
  service.Pump();

  for (size_t i = 0; i < futures.size(); ++i) {
    ScoreResult r = futures[i].get();
    if (i == 2 || i == 3) {  // arrival order -> chunk 2
      EXPECT_EQ(r.status.code(), StatusCode::kInternal) << "request " << i;
    } else {
      ASSERT_TRUE(r.ok()) << "request " << i << ": " << r.status.ToString();
      EXPECT_EQ(r.scores, want[i]) << "request " << i;
    }
  }
  EXPECT_EQ(injector.batch_throws(), 1);
  EXPECT_EQ(obs::GetCounter("serve/batch_failures").Get(), 1u);
  EXPECT_EQ(obs::GetCounter("serve/fallback_scored").Get(), 4u);

  // Service still serves after the failed chunk.
  injector.SetPlan(ServeFaultPlan{});
  const auto& seq = ds_.user_seqs[static_cast<size_t>(users[0])];
  const auto cands = Candidates(seq[prefix].poi, 12, 999);
  ScoreResult r = service.Score(users[0], cands);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.scores, ColdScore(model, seq, prefix, cands));
}

// Forced mid-batch evictions (injector) only cost cold rebuilds — the
// scores of every accepted request stay bit-identical.
TEST_F(ServeRobustnessTest, ForcedEvictionsPreserveBitIdentity) {
  core::StisanModel model(ds_, TinyStisanOptions());
  const auto users = PickUsers(/*min_len=*/8, /*max_users=*/2);
  ASSERT_EQ(users.size(), 2u);

  ServeFaultInjector injector;
  ServeFaultPlan plan;
  plan.evict_every_scores = 2;
  injector.SetPlan(plan);

  ServeOptions so;
  so.max_seq_len = 32;
  so.start_worker = false;
  so.fault_injector = &injector;
  RecommendService service(&model, so);

  for (size_t k = 1; k <= 7; ++k) {
    for (int64_t user : users) {
      const auto& seq = ds_.user_seqs[static_cast<size_t>(user)];
      ASSERT_TRUE(service.Append(user, seq[k - 1].poi, seq[k - 1].timestamp)
                      .ok());
      const auto cands = Candidates(seq[k - 1].poi, 15, 31 + user);
      ScoreResult r = service.Score(user, cands);
      ASSERT_TRUE(r.ok()) << r.status.ToString();
      EXPECT_EQ(r.scores, ColdScore(model, seq, k, cands))
          << "user=" << user << " prefix=" << k;
    }
  }
  EXPECT_GT(injector.forced_evictions(), 0);
  EXPECT_GT(obs::GetCounter("serve/cold_builds").Get(), 0u);
}

// The engine's entry guards throw (recoverable through the barrier)
// instead of CHECK-aborting the process.
TEST_F(ServeRobustnessTest, EngineEntryGuardsThrowInsteadOfAborting) {
  core::StisanModel model(ds_, TinyStisanOptions());
  core::IncrementalScorer engine(&model, /*max_seq_len=*/4);
  auto state = engine.NewState();

  std::vector<int64_t> pois{1, 2, 3};
  std::vector<double> ts{10.0, 20.0};  // length mismatch
  EXPECT_THROW(engine.Sync(*state, pois, ts), std::invalid_argument);

  std::vector<int64_t> long_pois{1, 2, 3, 4, 5};
  std::vector<double> long_ts{1, 2, 3, 4, 5};
  EXPECT_THROW(engine.Sync(*state, long_pois, long_ts), std::length_error);

  EXPECT_THROW(engine.Score(*state, {}, {}, {1, 2}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// 2. Shutdown.
// ---------------------------------------------------------------------------

// Pump-mode ops that never got pumped must resolve kUnavailable at
// shutdown — previously the destructor broke their promises and .get()
// threw std::future_error.
TEST_F(ServeRobustnessTest, ShutdownResolvesUnpumpedPromises) {
  core::StisanModel model(ds_, TinyStisanOptions());
  std::vector<std::future<ScoreResult>> futures;
  {
    ServeOptions so;
    so.start_worker = false;
    RecommendService service(&model, so);
    ASSERT_TRUE(service.Append(1, 5, 100.0).ok());
    for (int i = 0; i < 4; ++i) {
      futures.push_back(service.ScoreAsync(1, {1, 2, 3}));
    }
    // Destructor runs Shutdown() with the queue still full.
  }
  for (auto& fut : futures) {
    ScoreResult r = fut.get();  // must not throw std::future_error
    EXPECT_EQ(r.status.code(), StatusCode::kUnavailable)
        << r.status.ToString();
  }
}

// After Shutdown(), every entry point fails fast with kUnavailable
// instead of blocking forever.
TEST_F(ServeRobustnessTest, StoppedServiceFailsFast) {
  core::StisanModel model(ds_, TinyStisanOptions());
  ServeOptions so;
  so.start_worker = true;
  RecommendService service(&model, so);
  ASSERT_TRUE(service.Append(1, 5, 100.0).ok());
  service.Drain();
  service.Shutdown();

  EXPECT_EQ(service.Append(1, 6, 200.0).code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.EvictSession(1).code(), StatusCode::kUnavailable);
  ScoreResult r = service.Score(1, {1, 2, 3});  // must return, not hang
  EXPECT_EQ(r.status.code(), StatusCode::kUnavailable);
  service.Shutdown();  // idempotent
}

// A producer blocked by kBlock admission control must unblock with
// kUnavailable when the service shuts down underneath it.
TEST_F(ServeRobustnessTest, ShutdownUnblocksBlockedProducer) {
  core::StisanModel model(ds_, TinyStisanOptions());
  ServeOptions so;
  so.start_worker = false;  // nobody drains: the second op must block
  so.max_queue = 1;
  so.queue_policy = QueuePolicy::kBlock;
  RecommendService service(&model, so);

  auto first = service.ScoreAsync(1, {1, 2, 3});
  std::atomic<bool> blocked_returned{false};
  std::future<ScoreResult> second;
  std::thread producer([&] {
    second = service.ScoreAsync(2, {1, 2, 3});  // blocks on the full queue
    blocked_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.Shutdown();
  producer.join();
  EXPECT_TRUE(blocked_returned.load());
  EXPECT_EQ(first.get().status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(second.get().status.code(), StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// 3. Input validation.
// ---------------------------------------------------------------------------

// Bad requests used to CHECK-abort the whole process; now each resolves
// kInvalidArgument and the service keeps serving valid traffic.
TEST_F(ServeRobustnessTest, InvalidRequestsRejectedPerRequest) {
  core::StisanModel model(ds_, TinyStisanOptions());
  ServeOptions so;
  so.start_worker = false;
  so.num_pois = ds_.num_pois();
  RecommendService service(&model, so);

  EXPECT_EQ(service.Append(1, data::kPaddingPoi, 10.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.Append(1, -3, 10.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.Append(1, ds_.num_pois() + 1, 10.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      service.Append(1, 5, std::numeric_limits<double>::quiet_NaN()).code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      service.Append(1, 5, std::numeric_limits<double>::infinity()).code(),
      StatusCode::kInvalidArgument);

  EXPECT_EQ(service.ScoreAsync(1, {}).get().status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.ScoreAsync(1, {data::kPaddingPoi}).get().status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      service.ScoreAsync(1, {1, ds_.num_pois() + 7}).get().status.code(),
      StatusCode::kInvalidArgument);

  EXPECT_EQ(obs::GetCounter("serve/invalid_requests").Get(), 8u);
  EXPECT_EQ(obs::GetCounter("serve/appends").Get(), 0u);

  // Valid traffic is unaffected.
  const auto users = PickUsers(/*min_len=*/3, /*max_users=*/1);
  ASSERT_EQ(users.size(), 1u);
  const auto& seq = ds_.user_seqs[static_cast<size_t>(users[0])];
  ASSERT_TRUE(service.Append(users[0], seq[0].poi, seq[0].timestamp).ok());
  const auto cands = Candidates(seq[0].poi, 10, 42);
  ScoreResult r = service.Score(users[0], cands);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.scores, ColdScore(model, seq, 1, cands));
}

// ---------------------------------------------------------------------------
// 4. Admission control.
// ---------------------------------------------------------------------------

TEST_F(ServeRobustnessTest, RejectNewResolvesImmediately) {
  core::StisanModel model(ds_, TinyStisanOptions());
  ServeOptions so;
  so.start_worker = false;
  so.max_queue = 2;
  so.queue_policy = QueuePolicy::kRejectNew;
  RecommendService service(&model, so);

  auto a = service.ScoreAsync(1, {1, 2, 3});
  auto b = service.ScoreAsync(2, {1, 2, 3});
  auto c = service.ScoreAsync(3, {1, 2, 3});  // over the bound
  EXPECT_EQ(c.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);  // resolved without any pump
  EXPECT_EQ(c.get().status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.Append(4, 5, 10.0).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(obs::GetCounter("serve/rejected").Get(), 2u);

  service.Pump();
  EXPECT_TRUE(a.get().ok());  // cold start: zeros
  EXPECT_TRUE(b.get().ok());
  EXPECT_EQ(obs::GetCounter("serve/rejected").Get(), 2u);
}

TEST_F(ServeRobustnessTest, ShedOldestDropsOldestScoreKeepsAppends) {
  core::StisanModel model(ds_, TinyStisanOptions());
  const auto users = PickUsers(/*min_len=*/4, /*max_users=*/3);
  ASSERT_EQ(users.size(), 3u);
  ServeOptions so;
  so.start_worker = false;
  so.max_queue = 3;
  so.queue_policy = QueuePolicy::kShedOldest;
  RecommendService service(&model, so);

  const auto& seq0 = ds_.user_seqs[static_cast<size_t>(users[0])];
  ASSERT_TRUE(
      service.Append(users[0], seq0[0].poi, seq0[0].timestamp).ok());
  const auto cands = Candidates(seq0[0].poi, 10, 7);
  auto a = service.ScoreAsync(users[0], cands);  // oldest score
  auto b = service.ScoreAsync(users[1], cands);
  auto c = service.ScoreAsync(users[2], cands);  // sheds a, admits c

  EXPECT_EQ(a.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_EQ(a.get().status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(obs::GetCounter("serve/shed").Get(), 1u);

  service.Pump();
  ScoreResult rb = b.get();
  ASSERT_TRUE(rb.ok());
  ScoreResult rc = c.get();
  ASSERT_TRUE(rc.ok());
  // The append survived shedding: user 0's history is length 1.
  ScoreResult r0 = service.Score(users[0], cands);
  ASSERT_TRUE(r0.ok());
  EXPECT_EQ(r0.scores, ColdScore(model, seq0, 1, cands));

  // With nothing sheddable queued (appends only), the new op is rejected.
  ASSERT_TRUE(service.Append(users[0], seq0[1].poi, seq0[1].timestamp).ok());
  ASSERT_TRUE(service.Append(users[1], seq0[1].poi, seq0[1].timestamp).ok());
  ASSERT_TRUE(service.Append(users[2], seq0[1].poi, seq0[1].timestamp).ok());
  EXPECT_EQ(service.Append(users[0], seq0[2].poi, seq0[2].timestamp).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(obs::GetCounter("serve/rejected").Get(), 1u);
}

// kBlock backpressure: producers slow down instead of losing work; every
// request completes.
TEST_F(ServeRobustnessTest, BlockPolicyBackpressuresWithoutLoss) {
  core::StisanModel model(ds_, TinyStisanOptions());
  ServeOptions so;
  so.start_worker = true;
  so.max_queue = 2;
  so.queue_policy = QueuePolicy::kBlock;
  RecommendService service(&model, so);

  std::vector<std::future<ScoreResult>> futures;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(service.Append(i % 3, 1 + i % 5, 100.0 * (i + 1)).ok());
    futures.push_back(service.ScoreAsync(i % 3, {1, 2, 3}));
  }
  service.Drain();
  for (auto& fut : futures) {
    EXPECT_TRUE(fut.get().ok());
  }
  EXPECT_EQ(obs::GetCounter("serve/shed").Get(), 0u);
  EXPECT_EQ(obs::GetCounter("serve/rejected").Get(), 0u);
}

// ---------------------------------------------------------------------------
// 5. Deadlines + graceful degradation.
// ---------------------------------------------------------------------------

TEST_F(ServeRobustnessTest, ExpiredDeadlineResolvesDeadlineExceeded) {
  core::StisanModel model(ds_, TinyStisanOptions());
  ServeOptions so;
  so.start_worker = false;
  RecommendService service(&model, so);
  ASSERT_TRUE(service.Append(1, 5, 100.0).ok());

  auto fut = service.ScoreAsync(1, {1, 2, 3}, /*deadline_us=*/1);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  service.Pump();
  ScoreResult r = fut.get();
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded)
      << r.status.ToString();
  EXPECT_FALSE(r.stale);
  EXPECT_EQ(obs::GetCounter("serve/deadline_exceeded").Get(), 1u);

  // A comfortable deadline serves normally.
  auto ok = service.ScoreAsync(1, {1, 2, 3}, /*deadline_us=*/60'000'000);
  service.Pump();
  EXPECT_TRUE(ok.get().ok());
  EXPECT_EQ(obs::GetCounter("serve/deadline_exceeded").Get(), 1u);
}

TEST_F(ServeRobustnessTest, DefaultDeadlineAppliesToEveryRequest) {
  core::StisanModel model(ds_, TinyStisanOptions());
  ServeOptions so;
  so.start_worker = false;
  so.default_deadline_us = 1;
  RecommendService service(&model, so);
  ASSERT_TRUE(service.Append(1, 5, 100.0).ok());
  auto fut = service.ScoreAsync(1, {1, 2, 3});
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  service.Pump();
  EXPECT_EQ(fut.get().status.code(), StatusCode::kDeadlineExceeded);
}

// The stale tier: an expired request degrades to the resident cached
// prefix — bit-identical to a cold score over that prefix — instead of
// failing; without a resident state it still expires.
TEST_F(ServeRobustnessTest, StaleServeFromResidentPrefix) {
  core::StisanModel model(ds_, TinyStisanOptions());
  const auto users = PickUsers(/*min_len=*/8, /*max_users=*/1);
  ASSERT_EQ(users.size(), 1u);
  const int64_t user = users[0];
  const auto& seq = ds_.user_seqs[static_cast<size_t>(user)];

  ServeOptions so;
  so.start_worker = false;
  so.max_seq_len = 32;
  so.allow_stale = true;
  RecommendService service(&model, so);

  // Build a resident cache state over the first 5 visits.
  for (size_t k = 0; k < 5; ++k) {
    ASSERT_TRUE(service.Append(user, seq[k].poi, seq[k].timestamp).ok());
  }
  const auto cands = Candidates(seq[4].poi, 15, 13);
  ASSERT_TRUE(service.Score(user, cands).ok());

  // Append a 6th visit, then let the request's deadline expire: it must
  // serve stale from the cached 5-visit prefix.
  ASSERT_TRUE(service.Append(user, seq[5].poi, seq[5].timestamp).ok());
  auto fut = service.ScoreAsync(user, cands, /*deadline_us=*/1);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  service.Pump();
  ScoreResult r = fut.get();
  ASSERT_TRUE(r.ok()) << r.status.ToString();
  EXPECT_TRUE(r.stale);
  EXPECT_EQ(r.scores, ColdScore(model, seq, 5, cands));
  EXPECT_EQ(obs::GetCounter("serve/stale_served").Get(), 1u);
  EXPECT_EQ(obs::GetCounter("serve/deadline_exceeded").Get(), 0u);

  // A fresh request then catches up to the full 6-visit history.
  ScoreResult fresh = service.Score(user, cands);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.stale);
  EXPECT_EQ(fresh.scores, ColdScore(model, seq, 6, cands));

  // No resident state (different user): the expired request fails.
  auto cold = service.ScoreAsync(user + 100, cands, /*deadline_us=*/1);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  service.Pump();
  EXPECT_EQ(cold.get().status.code(), StatusCode::kDeadlineExceeded);
}

// Slow fallback model: requests whose deadline expires while an earlier
// chunk was being scored leave the batch at the re-check — they never pay
// for the forward.
TEST_F(ServeRobustnessTest, FallbackRechecksDeadlineBeforeForward) {
  struct SlowModel : models::SasRecModel {
    SlowModel(const data::Dataset& ds, const models::SanOptions& opts)
        : models::SasRecModel(ds, opts) {}
    std::vector<std::vector<float>> ScoreBatch(
        const std::vector<const data::EvalInstance*>& instances,
        const std::vector<std::vector<int64_t>>& candidates) override {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      return models::SasRecModel::ScoreBatch(instances, candidates);
    }
  };
  SlowModel model(ds_, TinySanOptions());
  const auto users = PickUsers(/*min_len=*/6, /*max_users=*/3);
  ASSERT_EQ(users.size(), 3u);

  ServeOptions so;
  so.start_worker = false;
  RecommendService service(&model, so);
  // Users 0, 1 have 5-visit histories; user 2 has 4 — a different length
  // group, so one flush runs two chunked forwards in sequence.
  for (size_t i = 0; i < users.size(); ++i) {
    const auto& seq = ds_.user_seqs[static_cast<size_t>(users[i])];
    const size_t prefix = (i == 2) ? 4 : 5;
    for (size_t k = 0; k < prefix; ++k) {
      ASSERT_TRUE(
          service.Append(users[i], seq[k].poi, seq[k].timestamp).ok());
    }
  }
  const auto cands = Candidates(
      ds_.user_seqs[static_cast<size_t>(users[0])][5].poi, 10, 3);
  auto a = service.ScoreAsync(users[0], cands);
  auto b = service.ScoreAsync(users[1], cands);
  auto c = service.ScoreAsync(users[2], cands, /*deadline_us=*/5000);
  service.Pump();

  EXPECT_TRUE(a.get().ok());
  EXPECT_TRUE(b.get().ok());
  // c was live at dequeue but expired during the first length-group's
  // 20 ms forward; the per-chunk re-check resolves it without scoring.
  EXPECT_EQ(c.get().status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(obs::GetCounter("serve/deadline_exceeded").Get(), 1u);
  EXPECT_EQ(obs::GetCounter("serve/fallback_scored").Get(), 2u);
}

// ---------------------------------------------------------------------------
// 6. Concurrency.
// ---------------------------------------------------------------------------

// Multi-producer stress over the full policy x drive-mode grid with random
// deadlines and forced sheds: the service must neither crash nor hang, and
// every future must resolve with scores or a typed error.
TEST_F(ServeRobustnessTest, ConcurrentStressEveryFutureResolves) {
  core::StisanModel model(ds_, TinyStisanOptions());
  constexpr int kProducers = 3;
  constexpr int kOpsPerProducer = 40;

  for (QueuePolicy policy : {QueuePolicy::kBlock, QueuePolicy::kRejectNew,
                             QueuePolicy::kShedOldest}) {
    for (bool worker : {true, false}) {
      ServeOptions so;
      so.start_worker = worker;
      so.max_seq_len = 16;
      so.max_queue = 8;
      so.queue_policy = policy;
      so.num_pois = ds_.num_pois();
      so.allow_stale = true;
      so.batch_window_us = worker ? 100 : 0;
      RecommendService service(&model, so);

      std::mutex futures_mu;
      std::vector<std::future<ScoreResult>> futures;
      std::atomic<bool> done{false};

      auto producer = [&](int id) {
        Rng rng(1000 + static_cast<uint64_t>(id));
        for (int i = 0; i < kOpsPerProducer; ++i) {
          const int64_t user = static_cast<int64_t>(rng.UniformInt(6u));
          switch (rng.UniformInt(4u)) {
            case 0:
            case 1: {
              const int64_t poi =
                  1 + static_cast<int64_t>(rng.UniformInt(
                          static_cast<uint64_t>(ds_.num_pois())));
              (void)service.Append(user, poi, 1000.0 * (i + 1));
              break;
            }
            case 2: {
              // Deadlines: none, tight (often expires), comfortable.
              const uint64_t pick = rng.UniformInt(3u);
              const int64_t deadline_us =
                  pick == 0 ? 0 : (pick == 1 ? 50 : 5'000'000);
              auto fut =
                  service.ScoreAsync(user, {1, 2, 3, 4, 5}, deadline_us);
              std::lock_guard<std::mutex> lock(futures_mu);
              futures.push_back(std::move(fut));
              break;
            }
            case 3:
              (void)service.EvictSession(user);
              break;
          }
        }
      };

      std::vector<std::thread> threads;
      std::thread pumper;
      if (!worker) {
        pumper = std::thread([&] {
          while (!done.load()) {
            service.Pump();
            std::this_thread::yield();
          }
          service.Pump();
        });
      }
      for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back(producer, p);
      }
      for (auto& t : threads) t.join();
      done.store(true);
      if (pumper.joinable()) pumper.join();
      service.Drain();

      size_t ok = 0, typed_errors = 0;
      for (auto& fut : futures) {
        ASSERT_EQ(fut.wait_for(std::chrono::seconds(30)),
                  std::future_status::ready)
            << "stranded future (policy="
            << static_cast<int>(policy) << " worker=" << worker << ")";
        ScoreResult r = fut.get();
        if (r.ok()) {
          EXPECT_EQ(r.scores.size(), 5u);
          ++ok;
        } else {
          EXPECT_TRUE(r.status.code() == StatusCode::kResourceExhausted ||
                      r.status.code() == StatusCode::kDeadlineExceeded ||
                      r.status.code() == StatusCode::kUnavailable)
              << r.status.ToString();
          ++typed_errors;
        }
      }
      // Under heavy shedding every in-storm score may legitimately carry
      // a typed error; what must hold is that the service still serves
      // once the storm passes.
      (void)ok;
      (void)typed_errors;
      ScoreResult after = service.Score(0, {1, 2, 3});
      ASSERT_TRUE(after.ok())
          << "policy=" << static_cast<int>(policy) << " worker=" << worker
          << ": " << after.status.ToString();
      EXPECT_EQ(after.scores.size(), 3u);
      service.Shutdown();
    }
  }
}

// Drain() racing concurrent Enqueues must neither deadlock nor return
// while ops it was asked to wait for are unprocessed.
TEST_F(ServeRobustnessTest, DrainVsConcurrentEnqueueRace) {
  core::StisanModel model(ds_, TinyStisanOptions());
  ServeOptions so;
  so.start_worker = true;
  so.max_seq_len = 16;
  RecommendService service(&model, so);

  // The producer enqueues a fixed number of ops (not a stop-flag loop:
  // under TSan's slowdown an unbounded producer can keep Drain's
  // processed == enqueued predicate from ever holding).
  constexpr int kOps = 150;
  std::atomic<bool> producing{true};
  std::mutex futures_mu;
  std::vector<std::future<ScoreResult>> futures;
  std::thread producer([&] {
    Rng rng(99);
    for (int i = 0; i < kOps; ++i) {
      const int64_t user = static_cast<int64_t>(rng.UniformInt(4u));
      (void)service.Append(
          user, 1 + static_cast<int64_t>(rng.UniformInt(20u)), 50.0);
      auto fut = service.ScoreAsync(user, {1, 2, 3});
      std::lock_guard<std::mutex> lock(futures_mu);
      futures.push_back(std::move(fut));
    }
    producing.store(false);
  });
  while (producing.load()) {
    service.Drain();  // races the producer's Enqueues
  }
  producer.join();
  service.Drain();
  std::lock_guard<std::mutex> lock(futures_mu);
  for (auto& fut : futures) {
    ASSERT_EQ(fut.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_TRUE(fut.get().ok());
  }
}

}  // namespace
}  // namespace stisan
