// Tests for the analysis additions: dataset statistics, full-ranking
// (unsampled) evaluation, and the rank-fusion ensemble.

#include <gtest/gtest.h>

#include <cmath>

#include "core/explain.h"
#include "data/stats.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/full_ranking.h"
#include "models/ensemble.h"
#include "models/shallow.h"

namespace stisan {
namespace {

// ---- Distribution / Summarize -------------------------------------------------

TEST(DistributionTest, EmptyInput) {
  auto d = data::Summarize({});
  EXPECT_EQ(d.count, 0);
  EXPECT_EQ(d.mean, 0.0);
}

TEST(DistributionTest, KnownValues) {
  auto d = data::Summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(d.count, 5);
  EXPECT_DOUBLE_EQ(d.mean, 3.0);
  EXPECT_DOUBLE_EQ(d.median, 3.0);
  EXPECT_DOUBLE_EQ(d.min, 1.0);
  EXPECT_DOUBLE_EQ(d.max, 5.0);
  EXPECT_NEAR(d.stddev, std::sqrt(2.0), 1e-9);
  EXPECT_DOUBLE_EQ(d.p25, 2.0);
  EXPECT_DOUBLE_EQ(d.p75, 4.0);
}

TEST(DistributionTest, SingleValue) {
  auto d = data::Summarize({7.0});
  EXPECT_EQ(d.count, 1);
  EXPECT_DOUBLE_EQ(d.mean, 7.0);
  EXPECT_DOUBLE_EQ(d.median, 7.0);
  EXPECT_DOUBLE_EQ(d.stddev, 0.0);
}

TEST(DistributionTest, QuantilesOrdered) {
  Rng rng(5);
  std::vector<double> v(500);
  for (auto& x : v) x = rng.Normal(10, 3);
  auto d = data::Summarize(v);
  EXPECT_LE(d.min, d.p25);
  EXPECT_LE(d.p25, d.median);
  EXPECT_LE(d.median, d.p75);
  EXPECT_LE(d.p75, d.p95);
  EXPECT_LE(d.p95, d.max);
}

// ---- Dataset statistics ---------------------------------------------------------

class StatsTest : public ::testing::Test {
 protected:
  StatsTest() : ds_(data::GenerateSynthetic(data::GowallaLikeConfig(0.15))) {}
  data::Dataset ds_;
};

TEST_F(StatsTest, IntervalsPositive) {
  auto d = data::IntervalHoursDistribution(ds_);
  EXPECT_GT(d.count, 100);
  EXPECT_GT(d.min, 0.0);
  EXPECT_GT(d.p95, d.median);  // heavy tail of overnight gaps
}

TEST_F(StatsTest, SessionStructureVisible) {
  auto s = data::ComputeSessionStats(ds_, 8.0);
  EXPECT_GT(s.mean_session_length, 1.5);
  EXPECT_GT(s.mean_sessions_per_user, 2.0);
  // Planted structure: within-session moves are much shorter than
  // between-session jumps.
  EXPECT_LT(s.mean_within_session_km, 0.5 * s.mean_between_session_km);
}

TEST_F(StatsTest, GiniInRangeAndSkewed) {
  const double g = data::PopularityGini(ds_);
  EXPECT_GT(g, 0.2);  // power-law popularity
  EXPECT_LT(g, 1.0);
}

TEST(StatsGini, UniformIsZero) {
  // Every POI visited exactly once -> perfectly equal -> gini ~ 0.
  data::Dataset ds;
  ds.poi_coords.assign(5, geo::GeoPoint{});
  ds.user_seqs = {{{1, 1}, {2, 2}, {3, 3}, {4, 4}}};
  EXPECT_NEAR(data::PopularityGini(ds), 0.0, 1e-9);
}

TEST(StatsGini, ConcentratedIsHigh) {
  data::Dataset ds;
  ds.poi_coords.assign(11, geo::GeoPoint{});
  std::vector<data::Visit> seq;
  for (int i = 0; i < 100; ++i) seq.push_back({1, double(i)});  // all POI 1
  seq.push_back({2, 1000.0});
  ds.user_seqs = {seq};
  EXPECT_GT(data::PopularityGini(ds), 0.85);
}

TEST_F(StatsTest, RevisitRateInRange) {
  const double r = data::RevisitRate(ds_);
  EXPECT_GT(r, 0.05);  // favourites get revisited
  EXPECT_LT(r, 0.95);
}

TEST_F(StatsTest, RadiusOfGyrationPerUser) {
  auto d = data::RadiusOfGyrationDistribution(ds_);
  EXPECT_EQ(d.count, ds_.num_users());
  EXPECT_GT(d.mean, 1.0);   // users move
  EXPECT_LT(d.max, 100.0);  // within the city
}

// ---- Full-ranking evaluation -------------------------------------------------------

TEST(FullRankingTest, PerfectScorerRanksFirst) {
  auto ds = data::GenerateSynthetic(data::GowallaLikeConfig(0.05));
  auto split = data::TrainTestSplit(ds, {.max_seq_len = 8});
  eval::Scorer perfect = [&](const data::EvalInstance& inst,
                             const std::vector<int64_t>& cands) {
    std::vector<float> s(cands.size());
    for (size_t i = 0; i < cands.size(); ++i) {
      s[i] = cands[i] == inst.target ? 1.0f : 0.0f;
    }
    return s;
  };
  auto acc = eval::FullRankingEvaluate(perfect, split.test, ds,
                                       {.max_instances = 10});
  EXPECT_EQ(acc.count(), 10);
  EXPECT_EQ(acc.HitRate(5), 1.0);
}

TEST(FullRankingTest, MatchesSampledProtocolOnPerfectAndPop) {
  // Full ranking is strictly harder than the 100-candidate protocol for
  // any scorer: the sampled rank is a lower bound.
  auto ds = data::GenerateSynthetic(data::GowallaLikeConfig(0.05));
  auto split = data::TrainTestSplit(ds, {.max_seq_len = 8});
  eval::CandidateGenerator gen(ds);

  models::PopModel pop;
  pop.Fit(ds, split.train);
  eval::Scorer scorer = [&](const data::EvalInstance& inst,
                            const std::vector<int64_t>& cands) {
    return pop.Score(inst, cands);
  };
  auto sampled = eval::Evaluate(scorer, split.test, gen, {});
  auto full = eval::FullRankingEvaluate(scorer, split.test, ds, {});
  EXPECT_LE(full.HitRate(10), sampled.HitRate(10) + 1e-9);
}

TEST(FullRankingTest, ChunkSizeDoesNotChangeResults) {
  auto ds = data::GenerateSynthetic(data::GowallaLikeConfig(0.05));
  auto split = data::TrainTestSplit(ds, {.max_seq_len = 8});
  models::PopModel pop;
  pop.Fit(ds, split.train);
  eval::Scorer scorer = [&](const data::EvalInstance& inst,
                            const std::vector<int64_t>& cands) {
    return pop.Score(inst, cands);
  };
  auto a = eval::FullRankingEvaluate(scorer, split.test, ds,
                                     {.max_instances = 8, .chunk_size = 7});
  auto b = eval::FullRankingEvaluate(scorer, split.test, ds,
                                     {.max_instances = 8, .chunk_size = 512});
  EXPECT_EQ(a.ranks(), b.ranks());
}

// ---- Ensemble -------------------------------------------------------------------------

class ConstantModel : public models::SequentialRecommender {
 public:
  explicit ConstantModel(std::vector<float> scores)
      : scores_(std::move(scores)) {}
  std::string name() const override { return "Constant"; }
  void Fit(const data::Dataset&,
           const std::vector<data::TrainWindow>&) override {
    ++fit_calls;
  }
  std::vector<float> Score(const data::EvalInstance&,
                           const std::vector<int64_t>& cands) override {
    std::vector<float> out(cands.size());
    for (size_t i = 0; i < cands.size(); ++i) {
      out[i] = scores_[i % scores_.size()];
    }
    return out;
  }
  int fit_calls = 0;

 private:
  std::vector<float> scores_;
};

TEST(EnsembleTest, FitsAllMembers) {
  ConstantModel a({1, 2, 3});
  ConstantModel b({3, 2, 1});
  models::EnsembleModel ens({{&a, 1.0}, {&b, 1.0}});
  data::Dataset ds;
  ens.Fit(ds, {});
  EXPECT_EQ(a.fit_calls, 1);
  EXPECT_EQ(b.fit_calls, 1);
}

TEST(EnsembleTest, AgreementWins) {
  // Members agree candidate 2 is best -> fused ranking puts it first.
  ConstantModel a({0.1f, 0.2f, 0.9f});
  ConstantModel b({0.2f, 0.1f, 0.8f});
  models::EnsembleModel ens({{&a, 1.0}, {&b, 1.0}});
  data::EvalInstance inst;
  auto fused = ens.Score(inst, {10, 11, 12});
  EXPECT_GT(fused[2], fused[0]);
  EXPECT_GT(fused[2], fused[1]);
}

TEST(EnsembleTest, WeightsBreakTies) {
  // a prefers candidate 0, b prefers candidate 1; weighting a higher must
  // put candidate 0 on top.
  ConstantModel a({0.9f, 0.1f});
  ConstantModel b({0.1f, 0.9f});
  models::EnsembleModel ens({{&a, 2.0}, {&b, 1.0}});
  data::EvalInstance inst;
  auto fused = ens.Score(inst, {10, 11});
  EXPECT_GT(fused[0], fused[1]);
}

TEST(EnsembleTest, ScaleFreeFusion) {
  // Wildly different score scales fuse identically to normalised ones
  // (RRF uses ranks only).
  ConstantModel small({0.001f, 0.002f, 0.003f});
  ConstantModel huge({1000.0f, 2000.0f, 3000.0f});
  models::EnsembleModel e1({{&small, 1.0}});
  models::EnsembleModel e2({{&huge, 1.0}});
  data::EvalInstance inst;
  auto f1 = e1.Score(inst, {1, 2, 3});
  auto f2 = e2.Score(inst, {1, 2, 3});
  EXPECT_EQ(f1, f2);
}

// ---- Explanations ----------------------------------------------------------------

TEST(ExplainTest, WellFormedAndSorted) {
  auto ds = data::GenerateSynthetic(data::GowallaLikeConfig(0.05));
  auto split = data::TrainTestSplit(ds, {.max_seq_len = 8});
  core::StisanOptions opts;
  opts.poi_dim = 8;
  opts.geo.dim = 8;
  opts.num_blocks = 1;
  opts.train.epochs = 1;
  opts.train.max_train_windows = 10;
  opts.train.num_negatives = 4;
  opts.train.knn_neighborhood = 30;
  core::StisanModel model(ds, opts);
  model.Fit(ds, split.train);

  const auto& inst = split.test.front();
  const int64_t candidate = inst.target;
  auto e = core::ExplainRecommendation(model, ds, inst, candidate, 3);
  EXPECT_EQ(e.candidate, candidate);
  EXPECT_TRUE(std::isfinite(e.score));
  EXPECT_GE(e.km_from_current, 0.0);
  ASSERT_LE(e.attended.size(), 3u);
  ASSERT_GE(e.attended.size(), 1u);
  for (size_t i = 0; i < e.attended.size(); ++i) {
    const auto& s = e.attended[i];
    EXPECT_GE(s.attention, 0.0);
    EXPECT_LE(s.attention, 1.0);
    EXPECT_GE(s.hours_before, 0.0);
    EXPECT_GE(s.km_to_candidate, 0.0);
    if (i > 0) {
      EXPECT_LE(s.attention, e.attended[i - 1].attention);
    }
  }
  // Formatting includes the candidate id and at least one step line.
  const std::string text = core::FormatExplanation(e);
  EXPECT_NE(text.find("candidate POI"), std::string::npos);
  EXPECT_NE(text.find("step"), std::string::npos);
}

TEST(ExplainTest, ScoreMatchesModelScore) {
  auto ds = data::GenerateSynthetic(data::GowallaLikeConfig(0.05));
  auto split = data::TrainTestSplit(ds, {.max_seq_len = 8});
  core::StisanOptions opts;
  opts.poi_dim = 8;
  opts.geo.dim = 8;
  opts.num_blocks = 1;
  opts.train.epochs = 0;
  core::StisanModel model(ds, opts);
  const auto& inst = split.test.front();
  auto e = core::ExplainRecommendation(model, ds, inst, 3);
  EXPECT_EQ(e.score, model.Score(inst, {3})[0]);
}

}  // namespace
}  // namespace stisan
