# Drives the stisan_cli binary through its full workflow and fails on any
# non-zero exit. Invoked by ctest (see tests/CMakeLists.txt).
file(MAKE_DIRECTORY ${WORKDIR})

function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN} RESULT_VARIABLE code
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "cli ${ARGN} failed (${code}):\n${out}\n${err}")
  endif()
endfunction()

run_cli(generate --preset changchun --scale 0.1 --out ${WORKDIR}/city.csv)
run_cli(train --data ${WORKDIR}/city.csv --ckpt ${WORKDIR}/model.bin
        --epochs 1 --min-user 5 --min-poi 2 --poi-dim 8 --geo-dim 8)
run_cli(evaluate --data ${WORKDIR}/city.csv --ckpt ${WORKDIR}/model.bin
        --min-user 5 --min-poi 2 --poi-dim 8 --geo-dim 8)
run_cli(recommend --data ${WORKDIR}/city.csv --ckpt ${WORKDIR}/model.bin
        --user 1 --k 5 --min-user 5 --min-poi 2 --poi-dim 8 --geo-dim 8)

# Mismatched architecture must fail cleanly, naming both configurations.
execute_process(COMMAND ${CLI} evaluate --data ${WORKDIR}/city.csv
                --ckpt ${WORKDIR}/model.bin --min-user 5 --min-poi 2
                --poi-dim 16 --geo-dim 16 RESULT_VARIABLE code
                OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(code EQUAL 0)
  message(FATAL_ERROR "evaluate with wrong dims unexpectedly succeeded")
endif()
if(NOT err MATCHES "config mismatch" OR NOT err MATCHES "poi_dim=8"
   OR NOT err MATCHES "poi_dim=16")
  message(FATAL_ERROR "dim mismatch error does not name both configs:\n${err}")
endif()

# seq-len changes no parameter shape; only the checkpoint fingerprint can
# catch evaluating with a different training window length.
execute_process(COMMAND ${CLI} evaluate --data ${WORKDIR}/city.csv
                --ckpt ${WORKDIR}/model.bin --min-user 5 --min-poi 2
                --poi-dim 8 --geo-dim 8 --seq-len 16 RESULT_VARIABLE code
                OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(code EQUAL 0)
  message(FATAL_ERROR "evaluate with wrong --seq-len unexpectedly succeeded")
endif()
if(NOT err MATCHES "config mismatch" OR NOT err MATCHES "seq_len=32"
   OR NOT err MATCHES "seq_len=16")
  message(FATAL_ERROR "seq-len mismatch error does not name both configs:\n${err}")
endif()

# Crash-safe checkpointing: interrupt-free ckpt-every run leaves a rotating
# checkpoint directory, and --resume 1 continues from it.
run_cli(train --data ${WORKDIR}/city.csv --ckpt ${WORKDIR}/model2.bin
        --epochs 2 --min-user 5 --min-poi 2 --poi-dim 8 --geo-dim 8
        --ckpt-every 1 --keep-ckpts 2)
if(NOT EXISTS ${WORKDIR}/model2.bin.d/ckpt-000002.bin)
  message(FATAL_ERROR "ckpt-every did not write epoch checkpoints")
endif()
run_cli(train --data ${WORKDIR}/city.csv --ckpt ${WORKDIR}/model2.bin
        --epochs 3 --min-user 5 --min-poi 2 --poi-dim 8 --geo-dim 8
        --ckpt-every 1 --keep-ckpts 2 --resume 1)
if(NOT EXISTS ${WORKDIR}/model2.bin.d/ckpt-000003.bin)
  message(FATAL_ERROR "resumed run did not extend the checkpoint series")
endif()

# Observability: --metrics-json emits a snapshot with per-phase timings,
# cache hit rates and checkpoint I/O stats — and is strictly passive: the
# checkpoint written with metrics enabled is byte-identical to the first
# train run (same data, seed and flags).
run_cli(train --data ${WORKDIR}/city.csv --ckpt ${WORKDIR}/model_obs.bin
        --epochs 1 --min-user 5 --min-poi 2 --poi-dim 8 --geo-dim 8
        --metrics-json ${WORKDIR}/train_metrics.json --metrics-every 1)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORKDIR}/model.bin ${WORKDIR}/model_obs.bin
                RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "--metrics-json changed the checkpoint bytes")
endif()
if(NOT EXISTS ${WORKDIR}/train_metrics.json)
  message(FATAL_ERROR "--metrics-json did not write the snapshot file")
endif()
file(READ ${WORKDIR}/train_metrics.json train_metrics)
foreach(key "time/train/epoch" "train/loss" "relation/cache_hits"
        "tape/cache_hits" "checkpoint/model_save_bytes"
        "threadpool/tasks_completed")
  if(NOT train_metrics MATCHES "\"${key}\"")
    message(FATAL_ERROR "train metrics snapshot lacks ${key}:\n${train_metrics}")
  endif()
endforeach()

run_cli(evaluate --data ${WORKDIR}/city.csv --ckpt ${WORKDIR}/model_obs.bin
        --min-user 5 --min-poi 2 --poi-dim 8 --geo-dim 8
        --metrics-json ${WORKDIR}/eval_metrics.json)
file(READ ${WORKDIR}/eval_metrics.json eval_metrics)
foreach(key "eval/instances" "time/eval/candidate_gen" "time/eval/score_batch"
        "checkpoint/model_load_bytes")
  if(NOT eval_metrics MATCHES "\"${key}\"")
    message(FATAL_ERROR "eval metrics snapshot lacks ${key}:\n${eval_metrics}")
  endif()
endforeach()
