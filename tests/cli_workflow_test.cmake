# Drives the stisan_cli binary through its full workflow and fails on any
# non-zero exit. Invoked by ctest (see tests/CMakeLists.txt).
file(MAKE_DIRECTORY ${WORKDIR})

function(run_cli)
  execute_process(COMMAND ${CLI} ${ARGN} RESULT_VARIABLE code
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "cli ${ARGN} failed (${code}):\n${out}\n${err}")
  endif()
endfunction()

run_cli(generate --preset changchun --scale 0.1 --out ${WORKDIR}/city.csv)
run_cli(train --data ${WORKDIR}/city.csv --ckpt ${WORKDIR}/model.bin
        --epochs 1 --min-user 5 --min-poi 2 --poi-dim 8 --geo-dim 8)
run_cli(evaluate --data ${WORKDIR}/city.csv --ckpt ${WORKDIR}/model.bin
        --min-user 5 --min-poi 2 --poi-dim 8 --geo-dim 8)
run_cli(recommend --data ${WORKDIR}/city.csv --ckpt ${WORKDIR}/model.bin
        --user 1 --k 5 --min-user 5 --min-poi 2 --poi-dim 8 --geo-dim 8)

# Mismatched architecture must fail cleanly.
execute_process(COMMAND ${CLI} evaluate --data ${WORKDIR}/city.csv
                --ckpt ${WORKDIR}/model.bin --min-user 5 --min-poi 2
                --poi-dim 16 --geo-dim 16 RESULT_VARIABLE code
                OUTPUT_QUIET ERROR_QUIET)
if(code EQUAL 0)
  message(FATAL_ERROR "evaluate with wrong dims unexpectedly succeeded")
endif()
