// Static-plan parity suite (DESIGN.md §13, label "plan").
//
// The plan subsystem promises that capture/replay is *bit-invisible*: the
// fused elementwise lowerings match their composed chains exactly, a
// replayed backward produces the same gradients as the eager topo-sorted
// sweep, the golden pipeline metrics are reproduced digit-for-digit with
// plans on and off, kill-and-resume stays byte-identical with plans
// active, a shape change triggers exactly one fresh capture per new
// shape, and replayed steps are served entirely from the arena's
// exact-size pool (zero allocator traffic).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/stisan.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "plan/plan.h"
#include "tensor/arena.h"
#include "tensor/gradcheck.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tools/golden_pipeline.h"
#include "train/signal.h"
#include "util/io_env.h"

namespace stisan {
namespace {

// Forces the plan gate for a test body and restores the environment gate on
// exit (plans default on, so "off" is the interesting direction to force).
class PlanOverride {
 public:
  explicit PlanOverride(int value) { plan::SetEnabledForTesting(value); }
  ~PlanOverride() { plan::SetEnabledForTesting(-1); }
};

std::vector<float> GradOf(const Tensor& t) {
  return {t.grad_data(), t.grad_data() + t.numel()};
}

// ---- Fused elementwise lowerings vs their composed chains ------------------

TEST(PlanFusedOps, FusedBiasReluMatchesComposedBitExact) {
  kernels::SetNumThreads(1);
  Rng rng(11);
  const Tensor x0 = Tensor::Randn({5, 7}, rng);
  const Tensor b0 = Tensor::Randn({7}, rng);
  const Tensor up = Tensor::Randn({5, 7}, rng);  // varied upstream grads

  auto run = [&](bool fused) {
    Tensor x = Tensor::FromVector({5, 7}, x0.ToVector(), true);
    Tensor b = Tensor::FromVector({7}, b0.ToVector(), true);
    Tensor out = fused ? ops::FusedBiasRelu(x, b) : ops::Relu(x + b);
    ops::Sum(out * up).Backward();
    return std::tuple{out.ToVector(), GradOf(x), GradOf(b)};
  };
  const auto [f_out, f_xg, f_bg] = run(true);
  const auto [c_out, c_xg, c_bg] = run(false);
  EXPECT_EQ(f_out, c_out);
  EXPECT_EQ(f_xg, c_xg);
  EXPECT_EQ(f_bg, c_bg);
}

TEST(PlanFusedOps, FusedResidualLayerNormMatchesComposedBitExact) {
  kernels::SetNumThreads(1);
  Rng rng(12);
  const Tensor x0 = Tensor::Randn({4, 6}, rng);
  const Tensor r0 = Tensor::Randn({4, 6}, rng);
  const Tensor g0 = Tensor::Rand({6}, rng, 0.5f, 1.5f);
  const Tensor be0 = Tensor::Randn({6}, rng, 0.1f);
  const Tensor up = Tensor::Randn({4, 6}, rng);
  constexpr float kEps = 1e-5f;

  auto run = [&](bool fused) {
    Tensor x = Tensor::FromVector({4, 6}, x0.ToVector(), true);
    Tensor r = Tensor::FromVector({4, 6}, r0.ToVector(), true);
    Tensor g = Tensor::FromVector({6}, g0.ToVector(), true);
    Tensor be = Tensor::FromVector({6}, be0.ToVector(), true);
    Tensor out = fused ? ops::FusedResidualLayerNorm(x, r, g, be, kEps)
                       : ops::LayerNorm(x + r, g, be, kEps);
    ops::Sum(out * up).Backward();
    return std::tuple{out.ToVector(), GradOf(x), GradOf(r), GradOf(g),
                      GradOf(be)};
  };
  const auto [f_out, f_xg, f_rg, f_gg, f_bg] = run(true);
  const auto [c_out, c_xg, c_rg, c_gg, c_bg] = run(false);
  EXPECT_EQ(f_out, c_out);
  EXPECT_EQ(f_xg, c_xg);
  EXPECT_EQ(f_rg, c_rg);
  EXPECT_EQ(f_gg, c_gg);
  EXPECT_EQ(f_bg, c_bg);
}

TEST(PlanFusedOps, GradCheckFusedBiasRelu) {
  kernels::SetNumThreads(1);
  Rng rng(13);
  // Preactivations stay clearly on one side of the ReLU kink so the central
  // differences never straddle it: x in (0.25, 1), bias entries +1 or -3.
  Tensor x = Tensor::Rand({3, 4}, rng, 0.25f, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::FromVector({4}, {1.0f, -3.0f, 1.0f, -3.0f},
                                /*requires_grad=*/true);
  Status st = CheckGradients(
      [&] { return ops::Sum(ops::Square(ops::FusedBiasRelu(x, b))); }, {x, b});
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(PlanFusedOps, GradCheckFusedResidualLayerNorm) {
  kernels::SetNumThreads(1);
  Rng rng(14);
  Tensor x = Tensor::Randn({3, 5}, rng, 1.0f, /*requires_grad=*/true);
  Tensor r = Tensor::Randn({3, 5}, rng, 1.0f, /*requires_grad=*/true);
  Tensor g = Tensor::Rand({5}, rng, 0.5f, 1.5f, /*requires_grad=*/true);
  Tensor be = Tensor::Randn({5}, rng, 0.1f, /*requires_grad=*/true);
  Status st = CheckGradients(
      [&] {
        return ops::Sum(
            ops::Square(ops::FusedResidualLayerNorm(x, r, g, be, 1e-5f)));
      },
      {x, r, g, be});
  EXPECT_TRUE(st.ok()) << st.ToString();
}

// ---- Capture/replay semantics ----------------------------------------------

// A small but structurally varied step: matmul, broadcast add, relu,
// layernorm, softmax, elementwise mul, square, sum.
Tensor StepLoss(const Tensor& w, const Tensor& b, const Tensor& g,
                const Tensor& be, const std::vector<float>& xdata,
                int64_t rows) {
  Tensor x = Tensor::FromVector({rows, 4}, xdata);
  Tensor h = ops::Relu(ops::MatMul(x, w) + b);
  Tensor n = ops::LayerNorm(h, g, be, 1e-5f);
  Tensor s = ops::Softmax(n);
  return ops::Sum(ops::Square(s * h));
}

std::vector<float> StepInput(int64_t rows, int step) {
  std::vector<float> x(static_cast<size_t>(rows) * 4);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.05f * static_cast<float>(i + 1) - 0.3f * static_cast<float>(step);
  }
  return x;
}

struct StepParams {
  Tensor w, b, g, be;
};

StepParams MakeParams() {
  Rng rng(21);
  StepParams p;
  Tensor w0 = Tensor::Randn({4, 5}, rng, 0.5f);
  Tensor b0 = Tensor::Randn({5}, rng, 0.5f);
  Tensor g0 = Tensor::Rand({5}, rng, 0.5f, 1.5f);
  Tensor be0 = Tensor::Randn({5}, rng, 0.1f);
  p.w = Tensor::FromVector({4, 5}, w0.ToVector(), true);
  p.b = Tensor::FromVector({5}, b0.ToVector(), true);
  p.g = Tensor::FromVector({5}, g0.ToVector(), true);
  p.be = Tensor::FromVector({5}, be0.ToVector(), true);
  return p;
}

struct StepRecord {
  float loss;
  std::vector<float> wg, bg, gg, beg;
};

TEST(PlanReplay, ReplayedStepsAreBitIdenticalToEager) {
  kernels::SetNumThreads(1);
  constexpr int kSteps = 4;

  auto run = [&](bool with_plan) {
    PlanOverride ov(with_plan ? 1 : 0);
    StepParams p = MakeParams();
    std::vector<StepRecord> records;
    plan::Scope scope;  // inert when plans are forced off
    for (int step = 0; step < kSteps; ++step) {
      p.w.ZeroGrad();
      p.b.ZeroGrad();
      p.g.ZeroGrad();
      p.be.ZeroGrad();
      StepRecord rec;
      {
        plan::StepScope step_scope;
        Tensor loss = StepLoss(p.w, p.b, p.g, p.be, StepInput(3, step), 3);
        rec.loss = loss.data()[0];
        loss.Backward();
      }
      rec.wg = GradOf(p.w);
      rec.bg = GradOf(p.b);
      rec.gg = GradOf(p.g);
      rec.beg = GradOf(p.be);
      records.push_back(std::move(rec));
    }
    if (with_plan) {
      const plan::Stats stats = plan::GetStats();
      EXPECT_EQ(stats.steps, 4u);
      EXPECT_EQ(stats.captures, 1u);
      EXPECT_EQ(stats.replays, 3u);
      EXPECT_EQ(stats.recaptures, 0u);
      EXPECT_EQ(plan::CachedPlanCount(), 1u);
    }
    return records;
  };

  const auto planned = run(true);
  const auto eager = run(false);
  ASSERT_EQ(planned.size(), eager.size());
  for (int step = 0; step < kSteps; ++step) {
    EXPECT_EQ(planned[step].loss, eager[step].loss) << "step " << step;
    EXPECT_EQ(planned[step].wg, eager[step].wg) << "step " << step;
    EXPECT_EQ(planned[step].bg, eager[step].bg) << "step " << step;
    EXPECT_EQ(planned[step].gg, eager[step].gg) << "step " << step;
    EXPECT_EQ(planned[step].beg, eager[step].beg) << "step " << step;
  }
}

TEST(PlanReplay, GradCheckOnReplayedBackward) {
  kernels::SetNumThreads(1);
  PlanOverride ov(1);
  StepParams p = MakeParams();
  const std::vector<float> xdata = StepInput(3, 0);

  plan::Scope scope;
  // Step 1 captures the tape and the eager backward order.
  {
    plan::StepScope step;
    StepLoss(p.w, p.b, p.g, p.be, xdata, 3).Backward();
  }
  // Step 2 replays the backward; its gradients are the analytic ones.
  p.w.ZeroGrad();
  p.b.ZeroGrad();
  p.g.ZeroGrad();
  p.be.ZeroGrad();
  {
    plan::StepScope step;
    StepLoss(p.w, p.b, p.g, p.be, xdata, 3).Backward();
  }
  ASSERT_EQ(plan::GetStats().replays, 1u);
  const std::vector<float> analytic = GradOf(p.w);

  // Central differences over forward-only replayed steps.
  constexpr float kEps = 1e-3f;
  float* wd = p.w.data();
  for (int64_t i = 0; i < p.w.numel(); ++i) {
    const float saved = wd[i];
    float plus, minus;
    wd[i] = saved + kEps;
    {
      plan::StepScope step;
      plus = StepLoss(p.w, p.b, p.g, p.be, xdata, 3).data()[0];
    }
    wd[i] = saved - kEps;
    {
      plan::StepScope step;
      minus = StepLoss(p.w, p.b, p.g, p.be, xdata, 3).data()[0];
    }
    wd[i] = saved;
    const float numeric = (plus - minus) / (2.0f * kEps);
    EXPECT_NEAR(analytic[static_cast<size_t>(i)], numeric,
                5e-3f + 5e-2f * std::abs(numeric))
        << "w elem " << i;
  }
}

TEST(PlanReplay, ShapeChangeRecapturesExactlyOncePerShape) {
  kernels::SetNumThreads(1);
  PlanOverride ov(1);
  StepParams p = MakeParams();

  plan::Scope scope;
  auto run_step = [&](int64_t rows, int step) {
    p.w.ZeroGrad();
    p.b.ZeroGrad();
    p.g.ZeroGrad();
    p.be.ZeroGrad();
    plan::StepScope step_scope;
    StepLoss(p.w, p.b, p.g, p.be, StepInput(rows, step), rows).Backward();
  };

  run_step(3, 0);  // capture shape A
  run_step(3, 1);  // replay A
  run_step(6, 2);  // new sequence length: one fresh capture for shape B
  run_step(6, 3);  // replay B
  run_step(3, 4);  // back to A: still replays, no recapture
  run_step(6, 5);  // back to B: still replays

  const plan::Stats stats = plan::GetStats();
  EXPECT_EQ(stats.steps, 6u);
  EXPECT_EQ(stats.captures, 2u);  // exactly one per distinct shape
  EXPECT_EQ(stats.replays, 4u);
  EXPECT_EQ(stats.recaptures, 0u);
  EXPECT_EQ(plan::CachedPlanCount(), 2u);
}

TEST(PlanReplay, ReplayedStepsAreServedFromExactPoolOnly) {
  kernels::SetNumThreads(1);
  PlanOverride ov(1);
  StepParams p = MakeParams();

  plan::Scope scope;
  auto run_step = [&](int step) {
    p.w.ZeroGrad();
    p.b.ZeroGrad();
    p.g.ZeroGrad();
    p.be.ZeroGrad();
    plan::StepScope step_scope;
    StepLoss(p.w, p.b, p.g, p.be, StepInput(3, step), 3).Backward();
  };

  run_step(0);  // capture: records every acquisition, reserves exact buckets
  run_step(1);  // first replay warms any remaining pool state
  const arena::Stats before = arena::GetStats();
  run_step(2);
  const arena::Stats after = arena::GetStats();
  // A replayed step performs zero fresh allocations: every buffer comes out
  // of the exact-size reservations the plan stocked.
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_GT(after.exact_hits, before.exact_hits);
  EXPECT_EQ(plan::GetStats().replays, 2u);
}

// ---- Golden pipeline parity ------------------------------------------------

std::map<std::string, double> LoadGolden() {
  std::ifstream in(STISAN_GOLDEN_JSON);
  EXPECT_TRUE(in.good()) << "missing golden file: " << STISAN_GOLDEN_JSON;
  std::stringstream ss;
  ss << in.rdbuf();
  return golden::ParseFlatJson(ss.str());
}

void ExpectMatchesGolden(const std::map<std::string, double>& computed,
                         const std::map<std::string, double>& golden) {
  ASSERT_FALSE(golden.empty());
  ASSERT_EQ(computed.size(), golden.size());
  for (const auto& [name, value] : golden) {
    ASSERT_TRUE(computed.contains(name)) << name;
    EXPECT_EQ(computed.at(name), value) << name;
  }
}

TEST(PlanGolden, GoldenMetricsIdenticalWithPlansOnAndOff) {
  const auto golden = LoadGolden();
  {
    PlanOverride off(0);
    ExpectMatchesGolden(golden::ComputeGoldenMetrics(), golden);
  }
  {
    PlanOverride on(1);
    ExpectMatchesGolden(golden::ComputeGoldenMetrics(), golden);
  }
}

// ---- Full pipeline byte-identity -------------------------------------------

std::string MakeTempDir(const char* tag) {
  std::string tmpl = std::string("/tmp/stisan_") + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* dir = mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir ? std::string(dir) : std::string();
}

void RemoveDirRecursive(const std::string& dir) {
  Env* env = Env::Default();
  auto names = env->ListDir(dir);
  if (names.ok()) {
    for (const auto& name : *names) env->DeleteFile(dir + "/" + name);
  }
  rmdir(dir.c_str());
}

struct PipelineOutcome {
  std::vector<float> params;
  std::map<std::string, double> metrics;
  train::TrainResult train_result;
};

// The golden pipeline configuration with optional checkpointing, as in
// resume_determinism_test.
PipelineOutcome RunPipeline(const std::string& ckpt_dir, bool resume,
                            bool interrupt) {
  auto dataset = data::GenerateSynthetic(data::GowallaLikeConfig(0.08));
  auto split = data::TrainTestSplit(dataset, {.max_seq_len = 12});

  core::StisanOptions options;
  options.poi_dim = 8;
  options.geo.dim = 8;
  options.geo.fourier_dim = 4;
  options.num_blocks = 1;
  options.train.epochs = 2;
  options.train.seed = 20220501;
  options.train.max_train_windows = 60;
  options.train.checkpoint.dir = ckpt_dir;
  options.train.checkpoint.resume = resume;
  if (interrupt) {
    options.train.on_epoch = [](const train::EpochStats& stats) {
      if (stats.epoch == 0) train::RequestStop();
      return true;
    };
  }
  core::StisanModel model(dataset, options);
  model.Fit(dataset, split.train);

  PipelineOutcome out;
  out.train_result = model.last_train_result();
  for (const Tensor& p : model.Parameters()) {
    const auto v = p.ToVector();
    out.params.insert(out.params.end(), v.begin(), v.end());
  }
  if (!out.train_result.interrupted) {
    eval::CandidateGenerator generator(dataset);
    eval::EvalOptions eval_options;
    eval_options.num_negatives = 50;
    eval_options.batch_size = 8;
    auto acc = eval::Evaluate(static_cast<eval::BatchScorer&>(model),
                              split.test, generator, eval_options);
    out.metrics = acc.Means();
    out.metrics["MRR"] = acc.MeanReciprocalRank();
  }
  return out;
}

void ExpectOutcomesBitIdentical(const PipelineOutcome& a,
                                const PipelineOutcome& b) {
  ASSERT_EQ(a.params.size(), b.params.size());
  for (size_t i = 0; i < a.params.size(); ++i) {
    ASSERT_EQ(a.params[i], b.params[i]) << "param elem " << i;
  }
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (const auto& [name, value] : a.metrics) {
    ASSERT_TRUE(b.metrics.contains(name)) << name;
    EXPECT_EQ(value, b.metrics.at(name)) << name;
  }
}

class PlanPipelineTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { train::ClearStopRequest(); }
  void TearDown() override {
    train::ClearStopRequest();
    kernels::SetNumThreads(1);
  }
};

TEST_P(PlanPipelineTest, TrainedParamsAndMetricsMatchEagerBitExact) {
  kernels::SetNumThreads(GetParam());

  PipelineOutcome eager;
  {
    PlanOverride off(0);
    eager = RunPipeline("", false, false);
  }
  ASSERT_TRUE(eager.train_result.status.ok())
      << eager.train_result.status.ToString();
  ASSERT_FALSE(eager.metrics.empty());

  PipelineOutcome planned;
  {
    PlanOverride on(1);
    planned = RunPipeline("", false, false);
  }
  ASSERT_TRUE(planned.train_result.status.ok())
      << planned.train_result.status.ToString();

  ExpectOutcomesBitIdentical(eager, planned);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, PlanPipelineTest,
                         ::testing::Values(1, 4));

TEST(PlanPipeline, KillAndResumeIsBitIdenticalWithPlansActive) {
  kernels::SetNumThreads(1);
  train::ClearStopRequest();
  PlanOverride on(1);

  PipelineOutcome reference = RunPipeline("", false, false);
  ASSERT_TRUE(reference.train_result.status.ok())
      << reference.train_result.status.ToString();
  ASSERT_EQ(reference.train_result.epochs_completed, 2);

  const std::string dir = MakeTempDir("plan_resume");
  PipelineOutcome killed = RunPipeline(dir, false, true);
  ASSERT_TRUE(killed.train_result.status.ok())
      << killed.train_result.status.ToString();
  ASSERT_TRUE(killed.train_result.interrupted);

  train::ClearStopRequest();
  PipelineOutcome resumed = RunPipeline(dir, true, false);
  ASSERT_TRUE(resumed.train_result.status.ok())
      << resumed.train_result.status.ToString();
  ASSERT_TRUE(resumed.train_result.resumed);
  ASSERT_EQ(resumed.train_result.epochs_completed, 2);

  ExpectOutcomesBitIdentical(reference, resumed);
  RemoveDirRecursive(dir);
}

}  // namespace
}  // namespace stisan
