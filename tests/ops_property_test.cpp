// Algebraic property tests for the tensor ops: identities that must hold
// (within float tolerance) for arbitrary random inputs and shapes.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace stisan {
namespace {

constexpr float kTol = 1e-4f;

void ExpectClose(const Tensor& a, const Tensor& b, float tol = kTol) {
  ASSERT_EQ(a.shape(), b.shape());
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], tol) << "elem " << i;
  }
}

class OpsAlgebraTest : public ::testing::TestWithParam<int> {
 protected:
  Rng rng_{static_cast<uint64_t>(GetParam())};
};

TEST_P(OpsAlgebraTest, AddCommutes) {
  Tensor a = Tensor::Randn({3, 5}, rng_);
  Tensor b = Tensor::Randn({3, 5}, rng_);
  ExpectClose(a + b, b + a);
}

TEST_P(OpsAlgebraTest, AddAssociates) {
  Tensor a = Tensor::Randn({4}, rng_);
  Tensor b = Tensor::Randn({4}, rng_);
  Tensor c = Tensor::Randn({4}, rng_);
  ExpectClose((a + b) + c, a + (b + c));
}

TEST_P(OpsAlgebraTest, MulDistributesOverAdd) {
  Tensor a = Tensor::Randn({2, 3}, rng_);
  Tensor b = Tensor::Randn({2, 3}, rng_);
  Tensor c = Tensor::Randn({2, 3}, rng_);
  ExpectClose(a * (b + c), a * b + a * c);
}

TEST_P(OpsAlgebraTest, MatMulDistributesOverAdd) {
  Tensor a = Tensor::Randn({3, 4}, rng_);
  Tensor b = Tensor::Randn({4, 2}, rng_);
  Tensor c = Tensor::Randn({4, 2}, rng_);
  ExpectClose(ops::MatMul(a, b + c),
              ops::MatMul(a, b) + ops::MatMul(a, c), 1e-3f);
}

TEST_P(OpsAlgebraTest, DoubleNegationIsIdentity) {
  Tensor a = Tensor::Randn({7}, rng_);
  ExpectClose(-(-a), a);
}

TEST_P(OpsAlgebraTest, ExpLogRoundTrip) {
  Tensor a = Tensor::Rand({6}, rng_, 0.2f, 3.0f);
  ExpectClose(ops::Exp(ops::Log(a)), a, 1e-3f);
  ExpectClose(ops::Log(ops::Exp(a)), a, 1e-3f);
}

TEST_P(OpsAlgebraTest, SqrtSquares) {
  Tensor a = Tensor::Rand({6}, rng_, 0.1f, 4.0f);
  ExpectClose(ops::Sqrt(ops::Square(a)), a, 1e-3f);
}

TEST_P(OpsAlgebraTest, SoftmaxInvariantToShift) {
  Tensor a = Tensor::Randn({3, 6}, rng_);
  ExpectClose(ops::Softmax(a), ops::Softmax(a + 13.5f), 1e-5f);
}

TEST_P(OpsAlgebraTest, TransposeIsInvolution) {
  Tensor a = Tensor::Randn({4, 6}, rng_);
  ExpectClose(ops::TransposeLast2(ops::TransposeLast2(a)), a);
}

TEST_P(OpsAlgebraTest, ReshapeRoundTrip) {
  Tensor a = Tensor::Randn({3, 8}, rng_);
  ExpectClose(ops::Reshape(ops::Reshape(a, {4, 6}), {3, 8}), a);
}

TEST_P(OpsAlgebraTest, SliceConcatRoundTrip) {
  Tensor a = Tensor::Randn({5, 4}, rng_);
  Tensor left = ops::Slice(a, 1, 0, 2);
  Tensor right = ops::Slice(a, 1, 2, 4);
  ExpectClose(ops::Concat(left, right, 1), a);
}

TEST_P(OpsAlgebraTest, SumDimsAgreeWithSum) {
  Tensor a = Tensor::Randn({4, 5}, rng_);
  Tensor via_rows = ops::Sum(ops::SumDim(a, 0));
  Tensor via_cols = ops::Sum(ops::SumDim(a, 1));
  Tensor direct = ops::Sum(a);
  EXPECT_NEAR(via_rows.data()[0], direct.data()[0], 1e-3f);
  EXPECT_NEAR(via_cols.data()[0], direct.data()[0], 1e-3f);
}

TEST_P(OpsAlgebraTest, MinMaxSandwichMean) {
  Tensor a = Tensor::Randn({3, 9}, rng_);
  Tensor lo = ops::MinDim(a, 1);
  Tensor mid = ops::MeanDim(a, 1);
  Tensor hi = ops::MaxDim(a, 1);
  for (int64_t i = 0; i < lo.numel(); ++i) {
    EXPECT_LE(lo.data()[i], mid.data()[i] + 1e-6f);
    EXPECT_LE(mid.data()[i], hi.data()[i] + 1e-6f);
  }
}

TEST_P(OpsAlgebraTest, LayerNormOutputIsStandardised) {
  Tensor x = Tensor::Randn({4, 16}, rng_, 3.0f);
  Tensor y = ops::LayerNorm(x, Tensor::Ones({16}), Tensor::Zeros({16}));
  for (int64_t r = 0; r < 4; ++r) {
    double mean = 0, var = 0;
    for (int64_t c = 0; c < 16; ++c) mean += y.at({r, c});
    mean /= 16.0;
    for (int64_t c = 0; c < 16; ++c) {
      var += (y.at({r, c}) - mean) * (y.at({r, c}) - mean);
    }
    var /= 16.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpsAlgebraTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace stisan
