// Observability layer tests: registry semantics (exact concurrent counting,
// histogram bucketing, callback gauges), snapshot/JSON stability, and the
// passivity guarantee — training and evaluation produce bit-identical
// metrics and checkpoint bytes whether or not metrics snapshots are emitted.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/stisan.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "obs/metrics.h"
#include "util/io_env.h"
#include "util/thread_pool.h"

namespace stisan::obs {
namespace {

std::string MakeTempDir(const char* tag) {
  std::string tmpl = std::string("/tmp/stisan_") + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* dir = mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir ? std::string(dir) : std::string();
}

void RemoveDirRecursive(const std::string& dir) {
  Env* env = Env::Default();
  auto names = env->ListDir(dir);
  if (names.ok()) {
    for (const auto& name : *names) env->DeleteFile(dir + "/" + name);
  }
  rmdir(dir.c_str());
}

// ---- Registry --------------------------------------------------------------

TEST(ObsCounterTest, SameNameReturnsSameCounter) {
  Counter& a = GetCounter("obs_test/identity");
  Counter& b = GetCounter("obs_test/identity");
  EXPECT_EQ(&a, &b);
  const uint64_t before = a.Get();
  b.Inc(3);
  EXPECT_EQ(a.Get() - before, 3u);
}

TEST(ObsCounterTest, ConcurrentIncrementsSumExactly) {
  Counter& c = GetCounter("obs_test/concurrent");
  const uint64_t before = c.Get();
  ThreadPool pool(4);
  // 10k increments of 1 plus 10k increments of i%3 from 4 workers: the
  // relaxed fetch_adds must lose nothing.
  ParallelFor(pool, 10000, [&c](int64_t i) {
    c.Inc();
    c.Inc(static_cast<uint64_t>(i % 3));
  });
  uint64_t expect = 10000;
  for (int64_t i = 0; i < 10000; ++i) expect += static_cast<uint64_t>(i % 3);
  EXPECT_EQ(c.Get() - before, expect);
}

TEST(ObsGaugeTest, LastWriteWins) {
  Gauge& g = GetGauge("obs_test/gauge");
  g.Set(1.5);
  EXPECT_EQ(g.Get(), 1.5);
  g.Set(-2.0);
  EXPECT_EQ(g.Get(), -2.0);
}

TEST(ObsHistogramTest, BucketUpperBoundsAreInclusive) {
  Histogram& h = GetHistogram("obs_test/buckets", {1.0, 2.0, 4.0});
  ASSERT_EQ(h.bounds().size(), 3u);
  h.Observe(0.5);  // bucket 0
  h.Observe(1.0);  // bucket 0 (inclusive upper bound)
  h.Observe(1.5);  // bucket 1
  h.Observe(2.0);  // bucket 1
  h.Observe(4.0);  // bucket 2
  h.Observe(9.0);  // bucket 3 (+inf)
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.TotalCount(), 6u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 9.0);
}

TEST(ObsHistogramTest, ConcurrentObservesCountExactly) {
  Histogram& h = GetHistogram("obs_test/hist_concurrent", {0.5});
  ThreadPool pool(4);
  ParallelFor(pool, 4000, [&h](int64_t i) {
    h.Observe(i % 2 == 0 ? 0.25 : 1.0);
  });
  EXPECT_EQ(h.TotalCount(), 4000u);
  EXPECT_EQ(h.BucketCount(0), 2000u);
  EXPECT_EQ(h.BucketCount(1), 2000u);
  // The CAS-loop sum must also be exact: every addend is representable.
  EXPECT_DOUBLE_EQ(h.Sum(), 2000 * 0.25 + 2000 * 1.0);
}

TEST(ObsCallbackGaugeTest, EvaluatedAtSnapshotTime) {
  static std::atomic<double> source{0.0};
  RegisterCallbackGauge("obs_test/callback", [] { return source.load(); });
  source.store(7.5);
  auto find = [](const Snapshot& snap, const std::string& name) {
    for (const auto& [key, value] : snap.gauges) {
      if (key == name) return value;
    }
    return -1.0;
  };
  EXPECT_EQ(find(TakeSnapshot(), "obs_test/callback"), 7.5);
  source.store(9.0);  // polled lazily: the next snapshot sees the new value
  EXPECT_EQ(find(TakeSnapshot(), "obs_test/callback"), 9.0);
  // Re-registering replaces the callback instead of stacking a duplicate.
  RegisterCallbackGauge("obs_test/callback", [] { return 1.0; });
  EXPECT_EQ(find(TakeSnapshot(), "obs_test/callback"), 1.0);
}

TEST(ObsTimerTest, ScopedTimerRecordsOneObservationPerScope) {
  Histogram& h = TimerHistogram("obs_test/span");
  const uint64_t before = h.TotalCount();
  for (int i = 0; i < 3; ++i) {
    OBS_SCOPED_TIMER("obs_test/span");
  }
  EXPECT_EQ(h.TotalCount() - before, 3u);
}

// ---- Snapshot / JSON -------------------------------------------------------

TEST(ObsSnapshotTest, EntriesAreSortedByName) {
  GetCounter("obs_test/zz");
  GetCounter("obs_test/aa");
  auto snap = TakeSnapshot();
  EXPECT_TRUE(std::is_sorted(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  EXPECT_TRUE(std::is_sorted(
      snap.gauges.begin(), snap.gauges.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

TEST(ObsSnapshotTest, JsonIsStableAndRoundTrips) {
  Counter& c = GetCounter("obs_test/json_counter");
  c.Reset();
  c.Inc(42);
  Gauge& g = GetGauge("obs_test/json_gauge");
  g.Set(0.1);  // not exactly representable: %.17g must round-trip it
  auto snap = TakeSnapshot();
  const std::string json = ToJson(snap);
  // Stable: serialising the same snapshot twice is byte-identical.
  EXPECT_EQ(json, ToJson(snap));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test/json_counter\": 42"), std::string::npos);
  // %.17g of 0.1 is the shortest representation that parses back exactly.
  const size_t gauge_pos = json.find("\"obs_test/json_gauge\": ");
  ASSERT_NE(gauge_pos, std::string::npos);
  const double parsed = std::strtod(
      json.c_str() + gauge_pos + std::string("\"obs_test/json_gauge\": ").size(),
      nullptr);
  EXPECT_EQ(parsed, 0.1);
}

TEST(ObsSnapshotTest, NonFiniteGaugesSerialiseAsStrings) {
  GetGauge("obs_test/nan_gauge").Set(std::nan(""));
  const std::string json = ToJson(TakeSnapshot());
  EXPECT_NE(json.find("\"obs_test/nan_gauge\": \"nan\""), std::string::npos);
  GetGauge("obs_test/nan_gauge").Set(0.0);
}

TEST(ObsSnapshotTest, WriteJsonAtomicProducesTheFile) {
  const std::string dir = MakeTempDir("obs_json");
  const std::string path = dir + "/metrics.json";
  GetCounter("obs_test/exported").Inc();
  ASSERT_TRUE(WriteJsonAtomic(nullptr, path).ok());
  auto content = Env::Default()->ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_NE(content->find("\"obs_test/exported\""), std::string::npos);
  EXPECT_NE(SummaryLine(TakeSnapshot()).find("counters"), std::string::npos);
  RemoveDirRecursive(dir);
}

TEST(ObsResetTest, ResetZeroesValuesButKeepsRegistrations) {
  Counter& c = GetCounter("obs_test/reset_me");
  c.Inc(5);
  Histogram& h = GetHistogram("obs_test/reset_hist", {1.0});
  h.Observe(0.5);
  ResetAllForTesting();
  EXPECT_EQ(c.Get(), 0u);
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  // The same references stay valid and usable after the reset.
  c.Inc();
  EXPECT_EQ(c.Get(), 1u);
  EXPECT_EQ(&c, &GetCounter("obs_test/reset_me"));
}

// ---- Passivity -------------------------------------------------------------
// The acceptance bar for the whole layer: a train+eval pipeline must produce
// bit-identical evaluation metrics, loss, and checkpoint bytes whether
// metrics snapshots are emitted (including mid-training, every epoch) or not.

struct PipelineOutcome {
  std::map<std::string, double> metrics;
  float loss = 0.0f;
  std::string checkpoint_bytes;
};

PipelineOutcome RunSmallPipeline(const std::string& metrics_json,
                                 const std::string& ckpt_path) {
  auto dataset = data::GenerateSynthetic(data::GowallaLikeConfig(0.05));
  auto split = data::TrainTestSplit(dataset, {.max_seq_len = 10});

  core::StisanOptions options;
  options.poi_dim = 8;
  options.geo.dim = 8;
  options.geo.fourier_dim = 4;
  options.num_blocks = 1;
  options.train.epochs = 2;
  options.train.seed = 411;
  options.train.max_train_windows = 40;
  options.train.metrics_json = metrics_json;
  options.train.metrics_every = 1;  // snapshot between epochs when enabled
  core::StisanModel model(dataset, options);
  model.Fit(dataset, split.train);

  eval::CandidateGenerator generator(dataset);
  eval::EvalOptions eval_options;
  eval_options.num_negatives = 30;
  eval_options.batch_size = 8;
  auto acc = eval::Evaluate(static_cast<eval::BatchScorer&>(model),
                            split.test, generator, eval_options);

  PipelineOutcome out;
  out.metrics = acc.Means();
  out.metrics["MRR"] = acc.MeanReciprocalRank();
  out.loss = model.last_epoch_loss();
  EXPECT_TRUE(model.SaveParameters(ckpt_path, "obs-passivity").ok());
  auto bytes = Env::Default()->ReadFileToString(ckpt_path);
  EXPECT_TRUE(bytes.ok());
  if (bytes.ok()) out.checkpoint_bytes = *bytes;
  return out;
}

TEST(ObsPassivityTest, MetricsEmissionNeverChangesResults) {
  const std::string dir = MakeTempDir("obs_passive");
  // Run 1: no metrics emission. Run 2: per-epoch snapshots plus a final
  // export, i.e. the CLI's --metrics-json --metrics-every 1 path.
  auto plain = RunSmallPipeline("", dir + "/plain.ckpt");
  auto instrumented =
      RunSmallPipeline(dir + "/metrics.json", dir + "/instrumented.ckpt");

  ASSERT_EQ(plain.metrics.size(), instrumented.metrics.size());
  for (const auto& [key, value] : plain.metrics) {
    ASSERT_TRUE(instrumented.metrics.contains(key)) << key;
    EXPECT_EQ(value, instrumented.metrics.at(key)) << key;  // bit-exact
  }
  EXPECT_EQ(plain.loss, instrumented.loss);
  ASSERT_FALSE(plain.checkpoint_bytes.empty());
  EXPECT_EQ(plain.checkpoint_bytes, instrumented.checkpoint_bytes);

  // The instrumented run actually wrote a snapshot with the promised
  // content: per-phase timings and training stats.
  auto json = Env::Default()->ReadFileToString(dir + "/metrics.json");
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"train/loss\""), std::string::npos);
  EXPECT_NE(json->find("\"time/train/epoch\""), std::string::npos);
  EXPECT_NE(json->find("\"train/windows_seen\""), std::string::npos);
  RemoveDirRecursive(dir);
}

}  // namespace
}  // namespace stisan::obs
