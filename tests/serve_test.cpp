// Serving-layer contracts.
//
// 1. Incremental-vs-full bit-identity: appending check-ins one at a time
//    through the service (or the engine directly) produces scores
//    bit-identical to a cold full forward at EVERY prefix length — across
//    model configs (K/V-cache tier, preprocess/TAPE tier, every attention
//    mode), thread counts {1, 4}, forced mid-sequence evictions, and
//    relation-ceiling rebuilds.
// 2. Micro-batching determinism: per-user scores and the serve obs
//    counter totals are independent of arrival interleaving and batch
//    caps; metric accumulation reuses the MetricAccumulator::Merge
//    rank-replay pattern from eval_pipeline_test.cpp.
// 3. Session-store property/fuzz: randomized append/evict/lookup/resident
//    interleavings against a naive map-of-vectors + LRU-deque reference.
// 4. Latent-bug regressions: single-token and mixed-length batches through
//    eval::BatchScorer implementations (StisanModel::ScoreBatch used to
//    CHECK-fail on ragged inputs).

#include <gtest/gtest.h>

#include <algorithm>
#include <future>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "core/incremental.h"
#include "core/stisan.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "models/san_models.h"
#include "obs/metrics.h"
#include "serve/service.h"
#include "serve/session_store.h"
#include "tensor/kernels.h"
#include "util/rng.h"

namespace stisan {
namespace {

core::StisanOptions TinyStisanOptions() {
  core::StisanOptions opts;
  opts.poi_dim = 8;
  opts.geo.dim = 8;
  opts.geo.fourier_dim = 4;
  opts.num_blocks = 2;
  opts.train.seed = 7;
  opts.knn_negatives = false;  // no Fit in these tests; skip KNN setup
  return opts;
}

models::SanOptions TinySanOptions() {
  models::SanOptions opts;
  opts.base.dim = 16;
  opts.num_blocks = 2;
  opts.max_seq_len = 32;
  opts.base.train.seed = 11;
  return opts;
}

struct StisanConfig {
  const char* label;
  core::StisanOptions opts;
};

// Every incremental tier x attention mode combination.
std::vector<StisanConfig> ServingConfigs() {
  std::vector<StisanConfig> configs;
  {
    auto o = TinyStisanOptions();
    o.use_tape = false;  // K/V-cache tier, interval-aware attention
    configs.push_back({"kv_interval", o});
  }
  {
    auto o = TinyStisanOptions();
    o.use_tape = false;
    o.attention_mode = core::AttentionMode::kVanilla;
    configs.push_back({"kv_vanilla", o});
  }
  {
    auto o = TinyStisanOptions();
    o.use_tape = false;
    o.attention_mode = core::AttentionMode::kRelationOnly;
    o.use_taad = false;  // also covers the non-TAAD decode
    configs.push_back({"kv_relation_only", o});
  }
  {
    auto o = TinyStisanOptions();  // full STiSAN: TAPE -> preprocess tier
    configs.push_back({"tape_interval", o});
  }
  {
    auto o = TinyStisanOptions();
    o.attention_mode = core::AttentionMode::kVanilla;
    configs.push_back({"tape_vanilla", o});
  }
  return configs;
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = data::GenerateSynthetic(data::GowallaLikeConfig(0.08));
    obs::ResetAllForTesting();
  }

  void TearDown() override { kernels::SetNumThreads(1); }

  // User ids whose synthetic history has at least min_len visits.
  std::vector<int64_t> PickUsers(size_t min_len, size_t max_users) const {
    std::vector<int64_t> users;
    for (size_t u = 0; u < ds_.user_seqs.size(); ++u) {
      if (ds_.user_seqs[u].size() >= min_len) {
        users.push_back(static_cast<int64_t>(u));
        if (users.size() == max_users) break;
      }
    }
    return users;
  }

  // Deterministic candidate list: `target` first, then distinct POIs.
  std::vector<int64_t> Candidates(int64_t target, size_t count,
                                  uint64_t seed) const {
    Rng rng(seed);
    std::vector<int64_t> cands{target};
    while (cands.size() < count) {
      const int64_t poi =
          1 + static_cast<int64_t>(rng.UniformInt(
                  static_cast<uint64_t>(ds_.num_pois())));
      if (std::find(cands.begin(), cands.end(), poi) == cands.end()) {
        cands.push_back(poi);
      }
    }
    return cands;
  }

  // Cold reference: full forward over the unpadded prefix.
  static std::vector<float> ColdScore(models::SequentialRecommender& model,
                                      const std::vector<data::Visit>& seq,
                                      size_t prefix,
                                      const std::vector<int64_t>& cands) {
    data::EvalInstance inst;
    inst.first_real = 0;
    for (size_t i = 0; i < prefix; ++i) {
      inst.poi.push_back(seq[i].poi);
      inst.t.push_back(seq[i].timestamp);
    }
    return model.Score(inst, cands);
  }

  data::Dataset ds_;
};

// ---------------------------------------------------------------------------
// Incremental-vs-full bit-identity through the service, every prefix
// length, threads {1, 4}, with mid-sequence evictions forced two ways:
// explicitly (EvictSession) and by capacity (max_sessions = 1 with two
// users alternating, so each user's score evicts the other's state).
// ---------------------------------------------------------------------------

TEST_F(ServeTest, IncrementalBitIdenticalAtEveryPrefix) {
  const auto users = PickUsers(/*min_len=*/10, /*max_users=*/2);
  ASSERT_EQ(users.size(), 2u);
  for (const auto& config : ServingConfigs()) {
    core::StisanModel model(ds_, config.opts);
    for (int64_t threads : {1, 4}) {
      kernels::SetNumThreads(threads);
      serve::ServeOptions so;
      so.max_sessions = 1;  // two alternating users -> capacity evictions
      so.max_seq_len = 32;
      so.start_worker = false;
      serve::RecommendService service(&model, so);
      ASSERT_TRUE(service.incremental());

      const size_t len =
          std::min<size_t>(12, std::min(ds_.user_seqs[users[0]].size(),
                                        ds_.user_seqs[users[1]].size()));
      for (size_t k = 1; k <= len; ++k) {
        for (int64_t user : users) {
          const auto& seq = ds_.user_seqs[static_cast<size_t>(user)];
          service.Append(user, seq[k - 1].poi, seq[k - 1].timestamp);
          if (k == len / 2) service.EvictSession(user);  // forced eviction
          const auto cands = Candidates(seq[k - 1].poi, 20, 99 + user);
          const auto got = service.Score(user, cands).scores;
          const auto want = ColdScore(model, seq, k, cands);
          ASSERT_EQ(got, want)
              << config.label << " threads=" << threads << " user=" << user
              << " prefix=" << k;
        }
      }
    }
  }
  // Two users under a one-slot cap: every alternation evicts.
  EXPECT_GT(obs::GetCounter("serve/evictions").Get(), 0u);
  EXPECT_GT(obs::GetCounter("serve/cold_builds").Get(), 0u);
  EXPECT_GT(obs::GetCounter("serve/incremental_scored").Get(), 0u);
  EXPECT_EQ(obs::GetCounter("serve/fallback_scored").Get(), 0u);
}

// Direct engine coverage: tier selection, and bit-identity across
// relation-ceiling rebuilds (same POI repeated with growing gaps moves
// r_hat_max on almost every append until the kt clip).
TEST_F(ServeTest, EngineTierSelectionAndCeilingRebuilds) {
  auto kv = TinyStisanOptions();
  kv.use_tape = false;
  core::StisanModel kv_model(ds_, kv);
  core::IncrementalScorer kv_engine(&kv_model, 32);
  EXPECT_EQ(kv_engine.tier(), core::IncrementalTier::kKvCache);

  core::StisanModel tape_model(ds_, TinyStisanOptions());
  core::IncrementalScorer tape_engine(&tape_model, 32);
  EXPECT_EQ(tape_engine.tier(), core::IncrementalTier::kPreprocess);

  // Growing gaps: 0s, 1h, 6h, 1d, 3d, ... each new max pair raises the
  // ceiling, invalidating every cached scaled row + encoder row.
  std::vector<data::Visit> seq;
  double t = 1000.0;
  const double gaps[] = {0,      3600,    21600,   86400,  259200,
                         604800, 1209600, 2592000, 5184000};
  const int64_t poi = 1 + static_cast<int64_t>(ds_.num_pois()) / 2;
  for (double gap : gaps) {
    t += gap;
    seq.push_back({poi, t});
  }
  auto state = kv_engine.NewState();
  std::vector<int64_t> pois;
  std::vector<double> times;
  const auto cands = Candidates(poi, 15, 4242);
  for (size_t k = 0; k < seq.size(); ++k) {
    pois.push_back(seq[k].poi);
    times.push_back(seq[k].timestamp);
    const auto got = kv_engine.Score(*state, pois, times, cands);
    const auto want = ColdScore(kv_model, seq, k + 1, cands);
    ASSERT_EQ(got, want) << "prefix=" << k + 1;
  }
  EXPECT_GT(state->rebuilds, 0);
}

// ---------------------------------------------------------------------------
// Overflow past the serving window: the service falls back to the batched
// path over the trailing window, transparently and bit-identically.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, OverflowFallsBackToWindowedBatchPath) {
  auto opts = TinyStisanOptions();
  opts.use_tape = false;
  core::StisanModel model(ds_, opts);
  const auto users = PickUsers(/*min_len=*/14, /*max_users=*/1);
  ASSERT_EQ(users.size(), 1u);
  const auto& seq = ds_.user_seqs[static_cast<size_t>(users[0])];

  serve::ServeOptions so;
  so.max_seq_len = 8;
  so.start_worker = false;
  serve::RecommendService service(&model, so);

  const size_t len = std::min<size_t>(14, seq.size());
  for (size_t k = 1; k <= len; ++k) {
    service.Append(users[0], seq[k - 1].poi, seq[k - 1].timestamp);
    const auto cands = Candidates(seq[k - 1].poi, 20, 7);
    const auto got = service.Score(users[0], cands).scores;
    // Reference: cold forward on the trailing window of max_seq_len.
    const size_t window = std::min<size_t>(k, 8);
    std::vector<data::Visit> tail(seq.begin() + (k - window),
                                  seq.begin() + k);
    const auto want = ColdScore(model, tail, window, cands);
    ASSERT_EQ(got, want) << "prefix=" << k;
  }
  EXPECT_GT(obs::GetCounter("serve/overflows").Get(), 0u);
  EXPECT_GT(obs::GetCounter("serve/fallback_scored").Get(), 0u);
  EXPECT_GT(obs::GetCounter("serve/incremental_scored").Get(), 0u);
}

// Cold start: a score before any append resolves to all-zero scores.
TEST_F(ServeTest, ColdStartScoresZero) {
  auto opts = TinyStisanOptions();
  opts.use_tape = false;
  core::StisanModel model(ds_, opts);
  serve::ServeOptions so;
  so.start_worker = false;
  serve::RecommendService service(&model, so);
  const auto result = service.Score(77, {1, 2, 3});
  EXPECT_EQ(result.scores, std::vector<float>(3, 0.0f));
  EXPECT_EQ(obs::GetCounter("serve/cold_starts").Get(), 1u);
}

// ---------------------------------------------------------------------------
// Non-incremental models serve through the batched fallback, with the
// same bit-identity contract against their own cold Score.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, FallbackModelBitIdenticalThroughService) {
  models::SasRecModel model(ds_, TinySanOptions());
  const auto users = PickUsers(/*min_len=*/8, /*max_users=*/3);
  ASSERT_GE(users.size(), 2u);

  for (int64_t threads : {1, 4}) {
    kernels::SetNumThreads(threads);
    serve::ServeOptions so;
    so.start_worker = false;
    so.max_batch = 2;  // force multi-chunk flushes
    serve::RecommendService service(&model, so);
    EXPECT_FALSE(service.incremental());

    // Interleave appends, then batch all score requests into one pump so
    // the fallback path groups users by (differing) history lengths.
    std::vector<std::future<serve::ScoreResult>> futures;
    std::vector<std::vector<float>> want;
    for (size_t i = 0; i < users.size(); ++i) {
      const auto& seq = ds_.user_seqs[static_cast<size_t>(users[i])];
      const size_t prefix = 5 + i;  // distinct lengths -> distinct groups
      for (size_t k = 0; k < prefix; ++k) {
        service.Append(users[i], seq[k].poi, seq[k].timestamp);
      }
      const auto cands = Candidates(seq[prefix - 1].poi, 20, 11 + i);
      futures.push_back(service.ScoreAsync(users[i], cands));
      want.push_back(ColdScore(model, seq, prefix, cands));
    }
    service.Pump();
    for (size_t i = 0; i < users.size(); ++i) {
      EXPECT_EQ(futures[i].get().scores, want[i])
          << "threads=" << threads << " user=" << users[i];
    }
  }
}

// ---------------------------------------------------------------------------
// Micro-batching determinism: per-user scores and serve counter totals do
// not depend on arrival interleaving or the batch cap. Rank metrics are
// accumulated shard-by-shard and merged (the MetricAccumulator::Merge
// rank-replay pattern from eval_pipeline_test.cpp).
// ---------------------------------------------------------------------------

TEST_F(ServeTest, MicroBatchingDeterminism) {
  models::SasRecModel model(ds_, TinySanOptions());
  const auto users = PickUsers(/*min_len=*/7, /*max_users=*/8);
  ASSERT_GE(users.size(), 4u);
  const size_t prefix = 6;

  // Per-user candidates: target = the (prefix+1)-th visit, index 0.
  std::vector<std::vector<int64_t>> cands(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    const auto& seq = ds_.user_seqs[static_cast<size_t>(users[i])];
    cands[i] = Candidates(seq[prefix].poi, 25, 1000 + i);
  }

  // Reference: cold per-instance scores, ranks accumulated in user order.
  eval::MetricAccumulator reference;
  std::vector<std::vector<float>> ref_scores(users.size());
  for (size_t i = 0; i < users.size(); ++i) {
    const auto& seq = ds_.user_seqs[static_cast<size_t>(users[i])];
    ref_scores[i] = ColdScore(model, seq, prefix, cands[i]);
    reference.Add(eval::RankOfTarget(ref_scores[i], 0));
  }

  // (append order seed, batch cap) grid; order 0 = user-major order.
  std::map<std::string, uint64_t> counter_baseline;
  for (uint64_t order_seed : {0u, 1u, 2u}) {
    for (int64_t max_batch : {1, 4, 32}) {
      obs::ResetAllForTesting();
      serve::ServeOptions so;
      so.start_worker = false;
      so.max_batch = max_batch;
      serve::RecommendService service(&model, so);

      // Build the op stream: every (user, visit-k) append plus one score
      // per user, shuffled by order_seed but FIFO per user (appends keep
      // their relative order; the score comes after the last append).
      std::vector<std::pair<size_t, size_t>> stream;  // (user idx, step)
      for (size_t i = 0; i < users.size(); ++i) {
        for (size_t k = 0; k < prefix; ++k) stream.push_back({i, k});
      }
      if (order_seed != 0) {
        // Deterministic interleave: rotate user blocks then round-robin.
        Rng rng(order_seed);
        std::stable_sort(stream.begin(), stream.end(),
                         [](const auto& a, const auto& b) {
                           return a.second < b.second;
                         });
        if (order_seed == 2) {
          std::reverse(stream.begin(), stream.end());
          std::stable_sort(stream.begin(), stream.end(),
                           [](const auto& a, const auto& b) {
                             return a.second < b.second;
                           });
        }
      }
      for (const auto& [i, k] : stream) {
        const auto& seq = ds_.user_seqs[static_cast<size_t>(users[i])];
        service.Append(users[i], seq[k].poi, seq[k].timestamp);
      }
      std::vector<std::future<serve::ScoreResult>> futures(users.size());
      for (size_t i = 0; i < users.size(); ++i) {
        const size_t j = order_seed == 2 ? users.size() - 1 - i : i;
        futures[j] = service.ScoreAsync(users[j], cands[j]);
      }
      service.Pump();

      // Scores invariant to arrival order and batch cap; ranks merged
      // from two shards replay to the reference accumulator exactly.
      eval::MetricAccumulator lo, hi;
      for (size_t i = 0; i < users.size(); ++i) {
        const auto scores = futures[i].get().scores;
        EXPECT_EQ(scores, ref_scores[i])
            << "order=" << order_seed << " batch=" << max_batch
            << " user=" << users[i];
        (i < users.size() / 2 ? lo : hi)
            .Add(eval::RankOfTarget(scores, 0));
      }
      eval::MetricAccumulator merged;
      merged.Merge(lo);
      merged.Merge(hi);
      EXPECT_EQ(merged.ranks(), reference.ranks());
      EXPECT_EQ(merged.MeanReciprocalRank(), reference.MeanReciprocalRank());
      for (const auto& [key, value] : reference.Means()) {
        EXPECT_EQ(merged.Means().at(key), value) << key;
      }

      // Counter totals depend only on the op multiset, not the batching.
      std::map<std::string, uint64_t> counters{
          {"serve/appends", obs::GetCounter("serve/appends").Get()},
          {"serve/requests", obs::GetCounter("serve/requests").Get()},
          {"serve/fallback_scored",
           obs::GetCounter("serve/fallback_scored").Get()},
          {"serve/incremental_scored",
           obs::GetCounter("serve/incremental_scored").Get()},
          {"serve/cold_starts", obs::GetCounter("serve/cold_starts").Get()},
      };
      EXPECT_EQ(obs::GetHistogram("time/serve/request").TotalCount(),
                counters["serve/requests"]);
      if (counter_baseline.empty()) {
        counter_baseline = counters;
      } else {
        EXPECT_EQ(counters, counter_baseline)
            << "order=" << order_seed << " batch=" << max_batch;
      }
    }
  }
}

// Same contract with the worker thread + a coalescing window: whatever
// the wall-clock batching, scores match the cold reference.
TEST_F(ServeTest, WorkerThreadWithCoalescingWindowMatches) {
  auto opts = TinyStisanOptions();
  opts.use_tape = false;
  core::StisanModel model(ds_, opts);
  const auto users = PickUsers(/*min_len=*/6, /*max_users=*/4);
  ASSERT_GE(users.size(), 2u);

  serve::ServeOptions so;
  so.batch_window_us = 200;
  so.start_worker = true;
  serve::RecommendService service(&model, so);

  std::vector<std::future<serve::ScoreResult>> futures;
  std::vector<std::vector<float>> want;
  for (size_t i = 0; i < users.size(); ++i) {
    const auto& seq = ds_.user_seqs[static_cast<size_t>(users[i])];
    for (size_t k = 0; k < 5; ++k) {
      service.Append(users[i], seq[k].poi, seq[k].timestamp);
    }
    const auto cands = Candidates(seq[4].poi, 20, 31 + i);
    futures.push_back(service.ScoreAsync(users[i], cands));
    want.push_back(ColdScore(model, seq, 5, cands));
  }
  service.Drain();
  for (size_t i = 0; i < users.size(); ++i) {
    auto result = futures[i].get();
    EXPECT_EQ(result.scores, want[i]) << "user=" << users[i];
    EXPECT_GE(result.latency_s, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Session-store property/fuzz: randomized interleavings against a naive
// reference (map of vectors + LRU deque).
// ---------------------------------------------------------------------------

TEST(SessionStoreTest, FuzzAgainstNaiveReference) {
  constexpr int64_t kCap = 4;
  constexpr int64_t kUsers = 11;
  serve::SessionStore store(kCap);
  std::map<int64_t, std::vector<std::pair<int64_t, double>>> ref_history;
  std::vector<int64_t> ref_lru;  // front = most recent resident
  int64_t ref_evictions = 0;
  Rng rng(0xC0FFEE);

  auto ref_drop = [&](int64_t user) {
    ref_lru.erase(std::remove(ref_lru.begin(), ref_lru.end(), user),
                  ref_lru.end());
  };

  for (int step = 0; step < 4000; ++step) {
    const int64_t user = static_cast<int64_t>(rng.UniformInt(uint64_t(kUsers)));
    switch (rng.UniformInt(uint64_t(5))) {
      case 0:
      case 1: {  // append
        const int64_t poi = 1 + static_cast<int64_t>(rng.UniformInt(50u));
        const double t = static_cast<double>(step) * 13.0;
        store.Append(user, poi, t);
        ref_history[user].push_back({poi, t});
        break;
      }
      case 2: {  // lookup: histories match the reference exactly
        serve::Session* s = store.Find(user);
        auto it = ref_history.find(user);
        if (it == ref_history.end()) {
          if (s != nullptr) {
            // Sessions may exist with empty histories (resident marks).
            ASSERT_TRUE(s->pois.empty());
          }
        } else {
          ASSERT_NE(s, nullptr);
          ASSERT_EQ(s->pois.size(), it->second.size());
          for (size_t i = 0; i < it->second.size(); ++i) {
            ASSERT_EQ(s->pois[i], it->second[i].first);
            ASSERT_EQ(s->timestamps[i], it->second[i].second);
          }
        }
        break;
      }
      case 3: {  // mark resident (builds or refreshes cache state)
        serve::Session& s = store.GetOrCreate(user);
        store.MarkResident(
            s, s.state ? nullptr
                       : std::make_unique<core::IncrementalState>());
        ref_drop(user);
        ref_lru.insert(ref_lru.begin(), user);
        while (static_cast<int64_t>(ref_lru.size()) > kCap) {
          ref_lru.pop_back();
          ++ref_evictions;
        }
        break;
      }
      case 4: {  // explicit evict
        store.Evict(user);
        ref_drop(user);
        break;
      }
    }
    // Invariants after every op.
    ASSERT_EQ(store.resident_count(),
              static_cast<int64_t>(ref_lru.size()));
    ASSERT_LE(store.resident_count(), kCap);
    ASSERT_EQ(store.evictions(), ref_evictions);
    for (int64_t u = 0; u < kUsers; ++u) {
      const serve::Session* s = store.Find(u);
      const bool want_resident =
          std::find(ref_lru.begin(), ref_lru.end(), u) != ref_lru.end();
      const bool got_resident = s != nullptr && s->resident;
      ASSERT_EQ(got_resident, want_resident) << "user=" << u;
      if (got_resident) {
        ASSERT_NE(s->state, nullptr);
      }
      if (s != nullptr && !s->resident) {
        ASSERT_EQ(s->state, nullptr);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Latent-bug regressions: eval::BatchScorer implementations and
// single-token / ragged batches.
// ---------------------------------------------------------------------------

class BatchEdgeTest : public ServeTest {};

TEST_F(BatchEdgeTest, SingleTokenBatchesMatchPerInstanceScore) {
  core::StisanModel stisan(ds_, TinyStisanOptions());
  models::SasRecModel sasrec(ds_, TinySanOptions());
  const auto users = PickUsers(/*min_len=*/2, /*max_users=*/4);
  ASSERT_GE(users.size(), 2u);

  std::vector<data::EvalInstance> instances;
  std::vector<std::vector<int64_t>> cands;
  for (size_t i = 0; i < users.size(); ++i) {
    const auto& seq = ds_.user_seqs[static_cast<size_t>(users[i])];
    data::EvalInstance inst;
    inst.first_real = 0;
    inst.poi = {seq[0].poi};  // length-1 delta: one real token, no padding
    inst.t = {seq[0].timestamp};
    instances.push_back(inst);
    cands.push_back(Candidates(seq[1].poi, 12, 500 + i));
  }
  std::vector<const data::EvalInstance*> ptrs;
  for (const auto& inst : instances) ptrs.push_back(&inst);

  for (models::SequentialRecommender* model :
       std::initializer_list<models::SequentialRecommender*>{&stisan,
                                                             &sasrec}) {
    const auto batched = model->ScoreBatch(ptrs, cands);
    ASSERT_EQ(batched.size(), ptrs.size());
    for (size_t i = 0; i < ptrs.size(); ++i) {
      EXPECT_EQ(batched[i], model->Score(instances[i], cands[i]))
          << model->name() << " instance=" << i;
    }
  }
}

TEST_F(BatchEdgeTest, MixedLengthBatchDegradesToPerInstance) {
  // Used to CHECK-fail inside StisanModel::EncodeBatch; now it must fall
  // back to per-instance scoring (the NeuralSeqModel behaviour).
  core::StisanModel model(ds_, TinyStisanOptions());
  const auto users = PickUsers(/*min_len=*/8, /*max_users=*/3);
  ASSERT_GE(users.size(), 3u);

  std::vector<data::EvalInstance> instances;
  std::vector<std::vector<int64_t>> cands;
  const size_t lengths[] = {1, 3, 7};
  for (size_t i = 0; i < 3; ++i) {
    const auto& seq = ds_.user_seqs[static_cast<size_t>(users[i])];
    data::EvalInstance inst;
    inst.first_real = 0;
    for (size_t k = 0; k < lengths[i]; ++k) {
      inst.poi.push_back(seq[k].poi);
      inst.t.push_back(seq[k].timestamp);
    }
    instances.push_back(inst);
    cands.push_back(Candidates(seq[lengths[i]].poi, 12, 600 + i));
  }
  std::vector<const data::EvalInstance*> ptrs;
  for (const auto& inst : instances) ptrs.push_back(&inst);

  const auto batched = model.ScoreBatch(ptrs, cands);
  ASSERT_EQ(batched.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(batched[i], model.Score(instances[i], cands[i]))
        << "instance=" << i;
  }
}

}  // namespace
}  // namespace stisan
