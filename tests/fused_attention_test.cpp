// Fused attention + arena/cache test suite (label: "fused").
//
// Covers the ops::FusedAttention contract from four angles:
//  1. analytic gradients vs central finite differences (bias/no-bias,
//     causal/non-causal, 2-D and padded-batch 3-D),
//  2. bit-equivalence against the composed per-op reference lowering
//     (STISAN_FUSED_ATTENTION=0) for forward, input grads, parameter grads,
//     learned-bias grads and the dropout RNG stream,
//  3. bit-determinism across thread counts on shapes large enough to
//     actually split in ParallelRanges,
//  4. the tape memory arena being bit-invisible while recycling buffers
//     across interleaved training steps and eval batches.
//
// Plus the memoisation caches: BuildCausalMask, CachedScaledRelation and
// CachedSinusoidalEncoding must return shared handles on repeat requests.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/relation.h"
#include "core/taad.h"
#include "core/tape.h"
#include "nn/attention.h"
#include "tensor/arena.h"
#include "tensor/gradcheck.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace stisan {
namespace {

// Forces a fused/composed lowering for the test's lifetime.
class ScopedFused {
 public:
  explicit ScopedFused(bool on) { ops::SetFusedAttentionEnabled(on ? 1 : 0); }
  ~ScopedFused() { ops::SetFusedAttentionEnabled(-1); }
};

// Pins the scalar reference kernels. Fused-vs-composed bit-equivalence is
// only promised under the scalar backend: the vector kernels' lane-parallel
// partial sums make the composed path's full-row softmax (over -1e9-masked
// logits) round differently from the fused bounded loops. SIMD coverage of
// the same shapes lives in simd_kernels_test.cpp, by tolerance.
class ScopedScalarSimd {
 public:
  ScopedScalarSimd() { kernels::SetSimdEnabledForTesting(0); }
  ~ScopedScalarSimd() { kernels::SetSimdEnabledForTesting(-1); }
};

Tensor RandomInput(Shape shape, uint64_t seed, float scale = 0.5f) {
  Rng rng(seed);
  return Tensor::Randn(std::move(shape), rng, scale, /*requires_grad=*/true);
}

std::vector<float> GradVector(const Tensor& t) {
  EXPECT_TRUE(t.has_grad());
  return {t.grad_data(), t.grad_data() + t.numel()};
}

#define EXPECT_GRADCHECK_OK(fn, ...)               \
  do {                                             \
    Status st = CheckGradients(fn, {__VA_ARGS__}); \
    EXPECT_TRUE(st.ok()) << st.ToString();         \
  } while (0)

// ---- 1. Finite-difference gradchecks ---------------------------------------

TEST(FusedGradCheck, CausalNoBias2D) {
  Tensor q = RandomInput({5, 4}, 1);
  Tensor k = RandomInput({5, 4}, 2);
  Tensor v = RandomInput({5, 4}, 3);
  const float scale = 1.0f / std::sqrt(4.0f);
  EXPECT_GRADCHECK_OK(
      [&] {
        return ops::Sum(ops::Square(
            ops::FusedAttention(q, k, v, Tensor(), /*causal=*/true, scale)));
      },
      q, k, v);
}

TEST(FusedGradCheck, NonCausalWithBias2D) {
  // Cross-attention shape: m != n, learned additive bias gets a gradient.
  Tensor q = RandomInput({3, 4}, 4);
  Tensor k = RandomInput({6, 4}, 5);
  Tensor v = RandomInput({6, 4}, 6);
  Tensor bias = RandomInput({3, 6}, 7);
  const float scale = 1.0f / std::sqrt(4.0f);
  EXPECT_GRADCHECK_OK(
      [&] {
        return ops::Sum(ops::Square(
            ops::FusedAttention(q, k, v, bias, /*causal=*/false, scale)));
      },
      q, k, v, bias);
}

TEST(FusedGradCheck, CausalBatchedBroadcastBias) {
  // [b, m, d] inputs with a shared [m, n] bias (IAAB's relation matrix is
  // per-sequence, but the broadcast path must still accumulate correctly).
  Tensor q = RandomInput({2, 4, 3}, 8);
  Tensor k = RandomInput({2, 4, 3}, 9);
  Tensor v = RandomInput({2, 4, 3}, 10);
  Tensor bias = RandomInput({4, 4}, 11);
  const float scale = 1.0f / std::sqrt(3.0f);
  EXPECT_GRADCHECK_OK(
      [&] {
        return ops::Sum(ops::Square(
            ops::FusedAttention(q, k, v, bias, /*causal=*/true, scale)));
      },
      q, k, v, bias);
}

TEST(FusedGradCheck, PaddedBatchMaskedBias) {
  // Padding handled the production way: a constant -1e9 mask in the bias
  // slot. Gradients through the surviving entries must still match finite
  // differences; masked keys contribute exactly zero.
  Tensor q = RandomInput({2, 4, 3}, 12);
  Tensor k = RandomInput({2, 4, 3}, 13);
  Tensor v = RandomInput({2, 4, 3}, 14);
  Tensor mask = core::BuildPaddedCausalMask(4, /*first_real=*/2);
  const float scale = 1.0f / std::sqrt(3.0f);
  EXPECT_GRADCHECK_OK(
      [&] {
        return ops::Sum(ops::Square(
            ops::FusedAttention(q, k, v, mask, /*causal=*/false, scale)));
      },
      q, k, v);
}

// ---- 2. Fused vs composed bit-equivalence ----------------------------------

// Runs module `fn` twice — composed then fused — on freshly-built identical
// inputs and returns {forward values, input grads} for each.
struct LoweringResult {
  std::vector<float> forward;
  std::vector<float> grads;
};

TEST(FusedComposedEquivalence, SingleHeadSelfAttentionBitExact) {
  ScopedScalarSimd scalar;
  auto run = [](bool fused) {
    ScopedFused guard(fused);
    Rng init(21);
    nn::CausalSelfAttention attn(8, /*dropout=*/0.0f, init);
    Tensor x = RandomInput({6, 8}, 22);
    Rng fwd(23);
    Tensor y = attn.Forward(x, Tensor(), fwd);
    LoweringResult r;
    r.forward = y.ToVector();
    ops::Sum(ops::Square(y)).Backward();
    r.grads = GradVector(x);
    return r;
  };
  const LoweringResult composed = run(false);
  const LoweringResult fused = run(true);
  // EXPECT_EQ on floats: the golden-metrics suite runs the fused lowering by
  // default, so anything short of bit-identity is a correctness bug.
  EXPECT_EQ(composed.forward, fused.forward);
  EXPECT_EQ(composed.grads, fused.grads);
}

TEST(FusedComposedEquivalence, LearnedBiasGradBitExact) {
  ScopedScalarSimd scalar;
  // TiSASRec feeds a learned bucket bias through the attention: the bias
  // gradient must survive the fused lowering bit-for-bit.
  auto run = [](bool fused) {
    ScopedFused guard(fused);
    Rng init(31);
    nn::CausalSelfAttention attn(8, /*dropout=*/0.0f, init);
    Tensor x = RandomInput({5, 8}, 32);
    Tensor bias = RandomInput({5, 5}, 33, 0.1f);
    Rng fwd(34);
    Tensor y = attn.Forward(x, bias, fwd);
    LoweringResult r;
    r.forward = y.ToVector();
    ops::Sum(ops::Square(y)).Backward();
    r.grads = GradVector(bias);
    return r;
  };
  const LoweringResult composed = run(false);
  const LoweringResult fused = run(true);
  EXPECT_EQ(composed.forward, fused.forward);
  EXPECT_EQ(composed.grads, fused.grads);
}

TEST(FusedComposedEquivalence, MultiHeadClose) {
  // Multi-head slices take the non-view GEMM path whose accumulation order
  // differs in sign-of-zero corner cases only; assert the issue tolerances.
  auto run = [](bool fused) {
    ScopedFused guard(fused);
    Rng init(41);
    nn::CausalSelfAttention attn(8, /*dropout=*/0.0f, init, /*causal=*/true,
                                 /*identity_init_values=*/false,
                                 /*num_heads=*/2);
    Tensor x = RandomInput({6, 8}, 42);
    Rng fwd(43);
    Tensor y = attn.Forward(x, Tensor(), fwd);
    LoweringResult r;
    r.forward = y.ToVector();
    ops::Sum(ops::Square(y)).Backward();
    r.grads = GradVector(x);
    return r;
  };
  const LoweringResult composed = run(false);
  const LoweringResult fused = run(true);
  ASSERT_EQ(composed.forward.size(), fused.forward.size());
  for (size_t i = 0; i < composed.forward.size(); ++i) {
    EXPECT_NEAR(composed.forward[i], fused.forward[i], 1e-5f) << i;
  }
  ASSERT_EQ(composed.grads.size(), fused.grads.size());
  for (size_t i = 0; i < composed.grads.size(); ++i) {
    EXPECT_NEAR(composed.grads[i], fused.grads[i], 1e-4f) << i;
  }
}

TEST(FusedComposedEquivalence, DropoutRngStreamAligned) {
  ScopedScalarSimd scalar;
  // Training-mode dropout: the fused kernel must consume the RNG stream in
  // exactly the composed order (row-major Bernoulli over the full prob
  // matrix), so same-seeded runs are bit-identical.
  auto run = [](bool fused) {
    ScopedFused guard(fused);
    Rng init(51);
    nn::CausalSelfAttention attn(8, /*dropout=*/0.3f, init);
    Tensor x = RandomInput({6, 8}, 52);
    Rng fwd(53);
    Tensor y = attn.Forward(x, Tensor(), fwd);
    LoweringResult r;
    r.forward = y.ToVector();
    ops::Sum(ops::Square(y)).Backward();
    r.grads = GradVector(x);
    return r;
  };
  const LoweringResult composed = run(false);
  const LoweringResult fused = run(true);
  EXPECT_EQ(composed.forward, fused.forward);
  EXPECT_EQ(composed.grads, fused.grads);
}

TEST(FusedComposedEquivalence, PaddedBatchBitExact) {
  ScopedScalarSimd scalar;
  // Batched attention over sequences with padding prefixes, as EncodeBatch
  // produces: [b, n, d] input + per-sequence [b, n, n] masks in the bias.
  auto run = [](bool fused) {
    ScopedFused guard(fused);
    Rng init(61);
    nn::CausalSelfAttention attn(8, /*dropout=*/0.0f, init, /*causal=*/false);
    Tensor x = RandomInput({2, 4, 8}, 62);
    Tensor mask = Tensor::Zeros({2, 4, 4});
    const Tensor m0 = core::BuildPaddedCausalMask(4, 0);
    const Tensor m1 = core::BuildPaddedCausalMask(4, 2);
    std::copy(m0.data(), m0.data() + 16, mask.data());
    std::copy(m1.data(), m1.data() + 16, mask.data() + 16);
    Rng fwd(63);
    Tensor y = attn.Forward(x, mask, fwd);
    LoweringResult r;
    r.forward = y.ToVector();
    ops::Sum(ops::Square(y)).Backward();
    r.grads = GradVector(x);
    return r;
  };
  const LoweringResult composed = run(false);
  const LoweringResult fused = run(true);
  EXPECT_EQ(composed.forward, fused.forward);
  EXPECT_EQ(composed.grads, fused.grads);
}

TEST(FusedComposedEquivalence, TaadDecodeBitExact) {
  ScopedScalarSimd scalar;
  // TAAD aliases keys and values (Attn(C, F, F)); both lowerings must agree
  // on forward and on the summed k==v gradient.
  auto run = [](bool fused) {
    ScopedFused guard(fused);
    Tensor f = RandomInput({4, 8}, 71);
    Tensor c = RandomInput({3, 8}, 72);
    Tensor s = core::TaadDecode(c, f, {1, 2, 3}, /*first_real=*/1);
    LoweringResult r;
    r.forward = s.ToVector();
    ops::Sum(ops::Square(s)).Backward();
    r.grads = GradVector(f);
    auto gc = GradVector(c);
    r.grads.insert(r.grads.end(), gc.begin(), gc.end());
    return r;
  };
  const LoweringResult composed = run(false);
  const LoweringResult fused = run(true);
  EXPECT_EQ(composed.forward, fused.forward);
  EXPECT_EQ(composed.grads, fused.grads);
}

TEST(FusedComposedEquivalence, TaadDecodeBatchBitExact) {
  ScopedScalarSimd scalar;
  auto run = [](bool fused) {
    ScopedFused guard(fused);
    Tensor f = RandomInput({2, 4, 8}, 81);
    Tensor c = RandomInput({2, 3, 8}, 82);
    Tensor s = core::TaadDecodeBatch(c, f, {0, 2});
    LoweringResult r;
    r.forward = s.ToVector();
    ops::Sum(ops::Square(s)).Backward();
    r.grads = GradVector(f);
    auto gc = GradVector(c);
    r.grads.insert(r.grads.end(), gc.begin(), gc.end());
    return r;
  };
  const LoweringResult composed = run(false);
  const LoweringResult fused = run(true);
  EXPECT_EQ(composed.forward, fused.forward);
  EXPECT_EQ(composed.grads, fused.grads);
}

// ---- 3. Thread-count determinism -------------------------------------------

TEST(FusedDeterminism, BitIdenticalAcrossThreadCounts) {
  // Shapes chosen so batch*m*cost clears ParallelMinWork (2^15 by default)
  // and the row partition genuinely splits at 4 threads.
  auto run = [](int64_t threads) {
    kernels::SetNumThreads(threads);
    Tensor q = RandomInput({2, 64, 16}, 91);
    Tensor k = RandomInput({2, 64, 16}, 92);
    Tensor v = RandomInput({2, 64, 16}, 93);
    Tensor bias = RandomInput({64, 64}, 94, 0.1f);
    const float scale = 1.0f / std::sqrt(16.0f);
    Tensor y = ops::FusedAttention(q, k, v, bias, /*causal=*/true, scale);
    LoweringResult r;
    r.forward = y.ToVector();
    ops::Sum(ops::Square(y)).Backward();
    for (const Tensor& t : {q, k, v, bias}) {
      auto g = GradVector(t);
      r.grads.insert(r.grads.end(), g.begin(), g.end());
    }
    return r;
  };
  const LoweringResult serial = run(1);
  const LoweringResult parallel = run(4);
  kernels::SetNumThreads(0);  // restore the default pool
  EXPECT_EQ(serial.forward, parallel.forward);
  EXPECT_EQ(serial.grads, parallel.grads);
}

// ---- 4. Arena --------------------------------------------------------------

TEST(ArenaTest, InterleavedTrainEvalBitInvisibleAndRecycles) {
  // Emulates the production scope layout: an outer training-run scope with
  // per-step tapes, a nested eval scope firing mid-run (the trainer's
  // periodic eval callback). Arena on must be bit-identical to arena off
  // and must actually serve buffers from the pool.
  auto run = [](bool arena_on) {
    arena::SetEnabledForTesting(arena_on ? 1 : 0);
    std::vector<float> trace;
    {
      arena::Scope train_scope;
      for (int step = 0; step < 4; ++step) {
        Tensor q = RandomInput({6, 8}, 100 + uint64_t(step));
        Tensor k = RandomInput({6, 8}, 200 + uint64_t(step));
        Tensor v = RandomInput({6, 8}, 300 + uint64_t(step));
        const float scale = 1.0f / std::sqrt(8.0f);
        Tensor loss = ops::Sum(ops::Square(
            ops::FusedAttention(q, k, v, Tensor(), /*causal=*/true, scale)));
        loss.Backward();
        trace.push_back(loss.ToVector()[0]);
        auto g = GradVector(q);
        trace.insert(trace.end(), g.begin(), g.end());
        if (step % 2 == 1) {  // interleaved eval batch
          arena::Scope eval_scope;
          NoGradGuard no_grad;
          Tensor eq = RandomInput({4, 8}, 400 + uint64_t(step));
          Tensor ek = RandomInput({5, 8}, 500 + uint64_t(step));
          Tensor ev = RandomInput({5, 8}, 600 + uint64_t(step));
          Tensor y =
              ops::FusedAttention(eq, ek, ev, Tensor(), /*causal=*/false,
                                  1.0f / std::sqrt(8.0f));
          auto yv = y.ToVector();
          trace.insert(trace.end(), yv.begin(), yv.end());
        }
      }
    }
    arena::SetEnabledForTesting(-1);
    return trace;
  };
  const std::vector<float> off = run(false);
  arena::ResetStats();
  const std::vector<float> on = run(true);
  const arena::Stats stats = arena::GetStats();
  EXPECT_EQ(off, on);  // bit-identical values, arena invisible
  EXPECT_GT(stats.hits, 0u) << "arena never recycled a buffer";
  EXPECT_GT(stats.recycled, 0u);
}

TEST(ArenaTest, InactiveWithoutScopeOrFlag) {
  arena::SetEnabledForTesting(1);
  EXPECT_FALSE(arena::Active());  // enabled but no live Scope
  {
    arena::Scope scope;
    EXPECT_TRUE(arena::Active());
  }
  arena::SetEnabledForTesting(0);
  {
    arena::Scope scope;
    EXPECT_FALSE(arena::Active());  // scope alive but pooling disabled
  }
  arena::SetEnabledForTesting(-1);
}

// ---- 5. Memoisation caches ---------------------------------------------------

TEST(CacheTest, CausalMaskMemoisedPerLength) {
  const Tensor a = nn::BuildCausalMask(7);
  const Tensor b = nn::BuildCausalMask(7);
  EXPECT_EQ(a.data(), b.data());  // shared handle, built once
  EXPECT_NE(a.data(), nn::BuildCausalMask(9).data());
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t j = 0; j < 7; ++j) {
      EXPECT_EQ(a.at({i, j}), j <= i ? 0.0f : -1e9f);
    }
  }
}

TEST(CacheTest, RelationCacheSharesAndMatchesDirectBuild) {
  const std::vector<int64_t> pois = {3, 1, 4, 1, 5};
  const std::vector<double> ts = {0.0, 3600.0, 7200.0, 9000.0, 12000.0};
  const std::vector<geo::GeoPoint> coords = {
      {43.8, 125.3}, {43.9, 125.4}, {43.7, 125.2}, {43.9, 125.4},
      {43.85, 125.35}};
  core::RelationOptions options;
  const Tensor first =
      core::CachedScaledRelation(pois, ts, coords, /*first_real=*/1, options);
  const auto before = core::GetRelationCacheStats();
  const Tensor second =
      core::CachedScaledRelation(pois, ts, coords, /*first_real=*/1, options);
  const auto after = core::GetRelationCacheStats();
  EXPECT_EQ(first.data(), second.data());  // served from the LRU
  EXPECT_EQ(after.hits, before.hits + 1);
  const Tensor direct = core::SoftmaxScaleRelation(
      core::BuildRelationMatrix(pois, ts, coords, 1, options), 1);
  EXPECT_EQ(first.ToVector(), direct.ToVector());
}

TEST(CacheTest, TapeCacheSharesAndMatchesDirectBuild) {
  const std::vector<double> pos = {1.0, 2.5, 3.5, 6.0};
  const Tensor first = core::CachedSinusoidalEncoding(pos, 8);
  const auto before = core::GetTapeCacheStats();
  const Tensor second = core::CachedSinusoidalEncoding(pos, 8);
  const auto after = core::GetTapeCacheStats();
  EXPECT_EQ(first.data(), second.data());
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(first.ToVector(), nn::SinusoidalEncoding(pos, 8).ToVector());
}

}  // namespace
}  // namespace stisan
