// Parameterized property tests: invariants that must hold across sweeps of
// shapes, lengths, thresholds and dataset configurations.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/geo_encoder.h"
#include "core/relation.h"
#include "core/stisan.h"
#include "core/tape.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "geo/quadkey.h"
#include "nn/attention.h"
#include "tensor/ops.h"

namespace stisan {
namespace {

// ---- Softmax rows sum to one for any shape --------------------------------------

class SoftmaxShapeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SoftmaxShapeTest, RowsSumToOne) {
  auto [rows, cols] = GetParam();
  Rng rng(rows * 100 + cols);
  Tensor x = Tensor::Randn({rows, cols}, rng, 3.0f);
  Tensor s = ops::Softmax(x);
  for (int r = 0; r < rows; ++r) {
    float sum = 0;
    for (int c = 0; c < cols; ++c) {
      const float v = s.at({r, c});
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SoftmaxShapeTest,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 7},
                                           std::pair{5, 3}, std::pair{16, 64},
                                           std::pair{64, 16}));

// ---- MatMul associates with identity for any square size -------------------------

class MatMulSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(MatMulSizeTest, IdentityIsNeutral) {
  const int n = GetParam();
  Rng rng(n);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor id = Tensor::Identity(n);
  Tensor left = ops::MatMul(id, a);
  Tensor right = ops::MatMul(a, id);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(left.data()[i], a.data()[i], 1e-5f);
    EXPECT_NEAR(right.data()[i], a.data()[i], 1e-5f);
  }
}

TEST_P(MatMulSizeTest, TransposeReversesProduct) {
  const int n = GetParam();
  Rng rng(n + 7);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  // (A B)^T == B^T A^T. TransposeLast2 returns strided views, so compare
  // through the stride-aware ToVector() gather.
  const std::vector<float> lhs =
      ops::TransposeLast2(ops::MatMul(a, b)).ToVector();
  const std::vector<float> rhs =
      ops::MatMul(ops::TransposeLast2(b), ops::TransposeLast2(a)).ToVector();
  for (size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_NEAR(lhs[i], rhs[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatMulSizeTest,
                         ::testing::Values(1, 2, 3, 8, 17, 32));

// ---- TAPE invariants across sequence lengths --------------------------------------

class TapeLengthTest : public ::testing::TestWithParam<int> {};

TEST_P(TapeLengthTest, PositionsMonotoneAndAnchored) {
  const int n = GetParam();
  Rng rng(n * 13);
  std::vector<double> t(static_cast<size_t>(n));
  double now = 0;
  for (auto& v : t) {
    now += rng.Exponential(1.0 / 3600.0);
    v = now;
  }
  auto pos = core::TimeAwarePositions(t);
  EXPECT_DOUBLE_EQ(pos[0], 1.0);
  double mean_step = 0;
  for (size_t k = 1; k < pos.size(); ++k) {
    EXPECT_GT(pos[k], pos[k - 1]);
    mean_step += pos[k] - pos[k - 1];
  }
  if (n > 1) {
    // Mean stretched step is exactly dt/mean(dt) + 1 averaged = 2.
    EXPECT_NEAR(mean_step / double(n - 1), 2.0, 1e-9);
  }
}

TEST_P(TapeLengthTest, ScaleInvariantInTime) {
  // Multiplying all timestamps by a constant leaves positions unchanged
  // (the mean-interval normalisation removes the unit).
  const int n = GetParam();
  if (n < 2) return;
  Rng rng(n * 17);
  std::vector<double> t(static_cast<size_t>(n));
  double now = 0;
  for (auto& v : t) {
    now += rng.Exponential(1.0);
    v = now;
  }
  std::vector<double> t_scaled(t);
  for (auto& v : t_scaled) v *= 3600.0;
  auto a = core::TimeAwarePositions(t);
  auto b = core::TimeAwarePositions(t_scaled);
  for (size_t k = 0; k < a.size(); ++k) EXPECT_NEAR(a[k], b[k], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Lengths, TapeLengthTest,
                         ::testing::Values(1, 2, 3, 8, 32, 100));

// ---- Relation matrix invariants across thresholds ----------------------------------

class RelationThresholdTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(RelationThresholdTest, NonNegativeBoundedAndCausal) {
  auto [kt, kd] = GetParam();
  Rng rng(int(kt * 10 + kd));
  const int64_t n = 12;
  std::vector<int64_t> pois(n);
  std::vector<double> t(n);
  std::vector<geo::GeoPoint> coords(n);
  double now = 0;
  for (int64_t i = 0; i < n; ++i) {
    pois[size_t(i)] = i + 1;
    now += rng.Exponential(1.0 / 36000.0);
    t[size_t(i)] = now;
    coords[size_t(i)] = geo::OffsetKm({43.9, 125.3}, rng.Normal(0, 5),
                                      rng.Normal(0, 5));
  }
  core::RelationOptions opts{.kt_days = kt, .kd_km = kd};
  Tensor r = core::BuildRelationMatrix(pois, t, coords, 0, opts);
  const float bound = static_cast<float>(kt + kd) + 1e-4f;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const float v = r.at({i, j});
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, bound);       // r = r_max - r_hat <= kt + kd
      if (j > i) {
        EXPECT_EQ(v, 0.0f);
      }
    }
  }
  // Softmax-scaled rows remain stochastic under any threshold.
  Tensor s = core::SoftmaxScaleRelation(r, 0);
  for (int64_t i = 0; i < n; ++i) {
    float sum = 0;
    for (int64_t j = 0; j <= i; ++j) sum += s.at({i, j});
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, RelationThresholdTest,
    ::testing::Values(std::pair{0.0, 0.0}, std::pair{5.0, 5.0},
                      std::pair{10.0, 10.0}, std::pair{20.0, 15.0},
                      std::pair{0.0, 15.0}, std::pair{20.0, 0.0}));

// ---- Geography encoder: kernel decays with distance ---------------------------------

class GeoKernelTest : public ::testing::TestWithParam<int> {};

TEST_P(GeoKernelTest, FourierDotDecaysWithDistance) {
  const int seed = GetParam();
  auto cfg = data::GowallaLikeConfig(0.05);
  cfg.seed = static_cast<uint64_t>(seed);
  auto ds = data::GenerateSynthetic(cfg);
  Rng rng(seed);
  core::GeoEncoder enc(ds, {.dim = 16, .fourier_dim = 8}, rng);

  // Average Fourier-part dot product for near pairs must exceed far pairs.
  NoGradGuard no_grad;
  std::vector<int64_t> ids;
  for (int64_t p = 1; p <= std::min<int64_t>(ds.num_pois(), 120); ++p) {
    ids.push_back(p);
  }
  Tensor emb = enc.Forward(ids);
  const int64_t f = enc.fourier_dim();
  double near_sum = 0, far_sum = 0;
  int64_t near_n = 0, far_n = 0;
  for (size_t a = 0; a < ids.size(); ++a) {
    for (size_t b = a + 1; b < ids.size(); b += 3) {
      const double dist = geo::HaversineKm(ds.poi_location(ids[a]),
                                           ds.poi_location(ids[b]));
      double dot = 0;
      for (int64_t k = 0; k < f; ++k) {
        dot += emb.at({int64_t(a), k}) * emb.at({int64_t(b), k});
      }
      if (dist < 0.5) {
        near_sum += dot;
        ++near_n;
      } else if (dist > 8.0) {
        far_sum += dot;
        ++far_n;
      }
    }
  }
  ASSERT_GE(near_n, 3);
  ASSERT_GE(far_n, 3);
  EXPECT_GT(near_sum / near_n, far_sum / far_n + 0.1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeoKernelTest, ::testing::Values(1, 2, 3));

// ---- Attention mask invariance across lengths ----------------------------------------

class MaskLengthTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MaskLengthTest, PaddedCausalMaskWellFormed) {
  auto [n, first_real] = GetParam();
  Tensor m = core::BuildPaddedCausalMask(n, first_real);
  for (int64_t i = 0; i < n; ++i) {
    // Every row keeps at least one visible key (no NaN softmax rows).
    bool any_visible = false;
    for (int64_t j = 0; j < n; ++j) {
      const bool visible = m.at({i, j}) == 0.0f;
      if (visible) any_visible = true;
      if (j > i) {
        EXPECT_FALSE(visible) << i << "," << j;  // causal
      }
      if (j < first_real && j != i) {
        EXPECT_FALSE(visible) << i << "," << j;                // padding
      }
    }
    EXPECT_TRUE(any_visible) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, MaskLengthTest,
                         ::testing::Values(std::pair{1, 0}, std::pair{4, 0},
                                           std::pair{4, 3}, std::pair{16, 7},
                                           std::pair{32, 31}));

// ---- Dataset split invariants across synthetic presets ------------------------------

class SplitPresetTest : public ::testing::TestWithParam<int> {};

TEST_P(SplitPresetTest, WindowsWellFormed) {
  data::SyntheticConfig cfg;
  switch (GetParam()) {
    case 0: cfg = data::GowallaLikeConfig(0.1); break;
    case 1: cfg = data::BrightkiteLikeConfig(0.1); break;
    case 2: cfg = data::WeeplacesLikeConfig(0.1); break;
    default: cfg = data::ChangchunLikeConfig(0.1); break;
  }
  auto ds = data::GenerateSynthetic(cfg);
  const int64_t n = 16;
  auto split = data::TrainTestSplit(ds, {.max_seq_len = n});
  ASSERT_FALSE(split.train.empty());
  ASSERT_FALSE(split.test.empty());
  for (const auto& w : split.train) {
    ASSERT_EQ(static_cast<int64_t>(w.poi.size()), n + 1);
    // Padding strictly at the head, real tail, >= 2 real entries.
    for (int64_t i = 0; i < w.first_real; ++i) {
      EXPECT_EQ(w.poi[size_t(i)], data::kPaddingPoi);
    }
    for (int64_t i = w.first_real; i <= n; ++i) {
      EXPECT_NE(w.poi[size_t(i)], data::kPaddingPoi);
    }
    EXPECT_LE(w.first_real, n - 1);
  }
  for (const auto& inst : split.test) {
    ASSERT_EQ(static_cast<int64_t>(inst.poi.size()), n);
    EXPECT_NE(inst.target, data::kPaddingPoi);
    EXPECT_GT(inst.target_time, 0.0);
    // The target never appears among the visited-before set... it may have
    // been visited if no unvisited fallback existed, but then it is the
    // last check-in; either way the candidate protocol stays valid.
    EXPECT_GE(inst.first_real, 0);
    EXPECT_LT(inst.first_real, n);
  }
}

INSTANTIATE_TEST_SUITE_P(Presets, SplitPresetTest,
                         ::testing::Values(0, 1, 2, 3));

// ---- Quadkey prefix sharing decays with distance, parameterized by level -------------

class QuadkeyLevelTest : public ::testing::TestWithParam<int> {};

TEST_P(QuadkeyLevelTest, SharedPrefixLongerForNearbyPoints) {
  const int level = GetParam();
  geo::GeoPoint base{43.88, 125.35};
  auto common_prefix = [&](const geo::GeoPoint& a, const geo::GeoPoint& b) {
    std::string ka = geo::ToQuadKey(a, level);
    std::string kb = geo::ToQuadKey(b, level);
    size_t c = 0;
    while (c < ka.size() && ka[c] == kb[c]) ++c;
    return c;
  };
  const size_t near = common_prefix(base, geo::OffsetKm(base, 0.1, 0.1));
  const size_t far = common_prefix(base, geo::OffsetKm(base, 50.0, 50.0));
  EXPECT_GE(near, far);
  EXPECT_GT(near, static_cast<size_t>(level) / 2);
}

INSTANTIATE_TEST_SUITE_P(Levels, QuadkeyLevelTest,
                         ::testing::Values(10, 14, 17, 20));

}  // namespace
}  // namespace stisan
