// Robustness tests for the crash-consistent checkpoint subsystem: fault
// injection sweeps over every byte offset of a checkpoint write, torn-write
// (silent truncation) recovery, fsync/rename failures, fuzzing the loader
// with truncated and bit-flipped files, rotation, and config-fingerprint
// mismatch detection.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "train/checkpoint.h"
#include "util/io_env.h"
#include "util/serialize.h"

namespace stisan::train {
namespace {

std::string MakeTempDir(const char* tag) {
  std::string tmpl = std::string("/tmp/stisan_") + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* dir = mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir ? std::string(dir) : std::string();
}

void RemoveDirRecursive(const std::string& dir) {
  Env* env = Env::Default();
  auto names = env->ListDir(dir);
  if (names.ok()) {
    for (const auto& name : *names) env->DeleteFile(dir + "/" + name);
  }
  rmdir(dir.c_str());
}

TrainerState MakeState(int64_t epoch) {
  TrainerState state;
  state.fingerprint = "test-model d=4";
  state.epoch = epoch;
  state.opt_step = epoch * 10 + 3;
  state.window_cursor = 0;
  state.last_epoch_loss = 0.25f * static_cast<float>(epoch);
  state.rng.s = {1ull, 2ull + static_cast<uint64_t>(epoch), 3ull, 4ull};
  state.rng.have_cached_normal = true;
  state.rng.cached_normal = -0.75;
  state.adam_t = epoch * 2;
  state.order = {3, 0, 2, 1, 4};
  state.shapes = {{2, 2}, {3}};
  state.params = {{1.0f, 2.0f, 3.0f, 4.0f}, {-1.0f, 0.5f, 9.0f}};
  state.adam_m = {{0.1f, 0.2f, 0.3f, 0.4f}, {0.0f, 0.0f, 1.0f}};
  state.adam_v = {{0.5f, 0.5f, 0.5f, 0.5f}, {2.0f, 2.0f, 2.0f}};
  return state;
}

void ExpectStatesEqual(const TrainerState& a, const TrainerState& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.opt_step, b.opt_step);
  EXPECT_EQ(a.window_cursor, b.window_cursor);
  EXPECT_EQ(a.last_epoch_loss, b.last_epoch_loss);
  EXPECT_EQ(a.rng.s, b.rng.s);
  EXPECT_EQ(a.rng.have_cached_normal, b.rng.have_cached_normal);
  EXPECT_EQ(a.rng.cached_normal, b.rng.cached_normal);
  EXPECT_EQ(a.adam_t, b.adam_t);
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.shapes, b.shapes);
  EXPECT_EQ(a.params, b.params);
  EXPECT_EQ(a.adam_m, b.adam_m);
  EXPECT_EQ(a.adam_v, b.adam_v);
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  const std::string dir = MakeTempDir("ckpt_rt");
  const std::string path = dir + "/ckpt-000001.bin";
  const TrainerState state = MakeState(1);
  ASSERT_TRUE(SaveCheckpoint(nullptr, path, state).ok());
  auto loaded = LoadCheckpoint(nullptr, path, state.fingerprint);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectStatesEqual(state, *loaded);
  RemoveDirRecursive(dir);
}

TEST(CheckpointTest, FingerprintMismatchNamesBothConfigs) {
  const std::string dir = MakeTempDir("ckpt_fp");
  const std::string path = dir + "/ckpt-000001.bin";
  ASSERT_TRUE(SaveCheckpoint(nullptr, path, MakeState(1)).ok());
  auto loaded = LoadCheckpoint(nullptr, path, "test-model d=8");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("test-model d=4"),
            std::string::npos);
  EXPECT_NE(loaded.status().message().find("test-model d=8"),
            std::string::npos);
  RemoveDirRecursive(dir);
}

// Sweep the hard-failure point across every byte of the checkpoint write:
// the save must fail, the destination must stay absent, and the previous
// checkpoint must keep loading.
TEST(CheckpointTest, FaultSweepWriteErrorNeverLosesPreviousCheckpoint) {
  const std::string dir = MakeTempDir("ckpt_sweep");
  FaultInjectionEnv env(Env::Default());

  CheckpointConfig config;
  config.dir = dir;
  config.keep_last = 3;
  config.env = &env;
  CheckpointManager manager(config, "test-model d=4");
  const TrainerState epoch1 = MakeState(1);
  ASSERT_TRUE(manager.Save(epoch1).ok());

  // Measure the full write size with a no-fault plan.
  env.SetPlan({});
  ASSERT_TRUE(manager.Save(MakeState(2)).ok());
  const int64_t total_bytes = env.bytes_attempted();
  ASSERT_GT(total_bytes, 0);
  ASSERT_TRUE(env.DeleteFile(manager.PathForEpoch(2)).ok());

  for (int64_t fail_at = 0; fail_at < total_bytes; ++fail_at) {
    FaultPlan plan;
    plan.fail_after_bytes = fail_at;
    plan.mode = FaultPlan::Mode::kError;
    env.SetPlan(plan);
    EXPECT_FALSE(manager.Save(MakeState(2)).ok()) << "fail_at=" << fail_at;
    EXPECT_FALSE(env.FileExists(manager.PathForEpoch(2)))
        << "torn destination at fail_at=" << fail_at;

    env.SetPlan({});
    auto latest = manager.LoadLatest();
    ASSERT_TRUE(latest.ok()) << "fail_at=" << fail_at << ": "
                             << latest.status().ToString();
    EXPECT_EQ(latest->epoch, 1) << "fail_at=" << fail_at;
  }
  RemoveDirRecursive(dir);
}

// Torn-write sweep: bytes past the failpoint are silently dropped but every
// IO call reports success (power loss between write() and the data becoming
// durable). The loader must either see a fully valid checkpoint or skip the
// torn file and fall back to the previous epoch.
TEST(CheckpointTest, FaultSweepSilentTruncationAlwaysRecovers) {
  const std::string dir = MakeTempDir("ckpt_torn");
  FaultInjectionEnv env(Env::Default());

  CheckpointConfig config;
  config.dir = dir;
  config.keep_last = 3;
  config.env = &env;
  CheckpointManager manager(config, "test-model d=4");
  ASSERT_TRUE(manager.Save(MakeState(1)).ok());

  env.SetPlan({});
  ASSERT_TRUE(manager.Save(MakeState(2)).ok());
  const int64_t total_bytes = env.bytes_attempted();
  ASSERT_TRUE(env.DeleteFile(manager.PathForEpoch(2)).ok());

  // Stride 1 over the whole envelope: header, payload and trailing CRC.
  for (int64_t cut = 0; cut < total_bytes; ++cut) {
    env.DeleteFile(manager.PathForEpoch(2));  // fresh torn file per cut
    FaultPlan plan;
    plan.fail_after_bytes = cut;
    plan.mode = FaultPlan::Mode::kSilentTruncate;
    env.SetPlan(plan);
    manager.Save(MakeState(2));  // reports OK: the tear is silent

    env.SetPlan({});
    // The torn file itself must never parse as valid.
    auto torn = LoadCheckpoint(&env, manager.PathForEpoch(2), "");
    EXPECT_FALSE(torn.ok()) << "torn checkpoint parsed at cut=" << cut;
    // And recovery must land on the intact previous checkpoint.
    auto latest = manager.LoadLatest();
    ASSERT_TRUE(latest.ok()) << "cut=" << cut;
    EXPECT_EQ(latest->epoch, 1) << "cut=" << cut;
  }
  RemoveDirRecursive(dir);
}

TEST(CheckpointTest, SyncAndRenameFailuresLeaveDestinationUntouched) {
  const std::string dir = MakeTempDir("ckpt_sync");
  FaultInjectionEnv env(Env::Default());

  CheckpointConfig config;
  config.dir = dir;
  config.keep_last = 3;
  config.env = &env;
  CheckpointManager manager(config, "test-model d=4");
  ASSERT_TRUE(manager.Save(MakeState(1)).ok());

  FaultPlan sync_fail;
  sync_fail.fail_on_sync = true;
  env.SetPlan(sync_fail);
  EXPECT_FALSE(manager.Save(MakeState(2)).ok());
  EXPECT_FALSE(env.FileExists(manager.PathForEpoch(2)));

  FaultPlan rename_fail;
  rename_fail.fail_on_rename = true;
  env.SetPlan(rename_fail);
  EXPECT_FALSE(manager.Save(MakeState(2)).ok());
  EXPECT_FALSE(env.FileExists(manager.PathForEpoch(2)));

  env.SetPlan({});
  auto latest = manager.LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->epoch, 1);
  RemoveDirRecursive(dir);
}

// Fuzz the loader directly: every truncation length and every single-bit
// flip of a valid checkpoint file must yield a clean error Status (the
// envelope CRC covers the payload; the header fields are validated).
TEST(CheckpointTest, FuzzTruncatedFilesRejectedCleanly) {
  const std::string dir = MakeTempDir("ckpt_fuzz_t");
  const std::string valid_path = dir + "/ckpt-000001.bin";
  ASSERT_TRUE(SaveCheckpoint(nullptr, valid_path, MakeState(1)).ok());
  auto bytes = Env::Default()->ReadFileToString(valid_path);
  ASSERT_TRUE(bytes.ok());

  const std::string fuzz_path = dir + "/fuzz.bin";
  for (size_t len = 0; len < bytes->size(); ++len) {
    {
      std::ofstream out(fuzz_path, std::ios::binary | std::ios::trunc);
      out.write(bytes->data(), static_cast<std::streamsize>(len));
    }
    auto loaded = LoadCheckpoint(nullptr, fuzz_path, "");
    EXPECT_FALSE(loaded.ok()) << "truncated to " << len << " bytes parsed";
  }
  RemoveDirRecursive(dir);
}

TEST(CheckpointTest, FuzzBitFlipsRejectedCleanly) {
  const std::string dir = MakeTempDir("ckpt_fuzz_b");
  const std::string valid_path = dir + "/ckpt-000001.bin";
  ASSERT_TRUE(SaveCheckpoint(nullptr, valid_path, MakeState(1)).ok());
  auto bytes = Env::Default()->ReadFileToString(valid_path);
  ASSERT_TRUE(bytes.ok());

  const std::string fuzz_path = dir + "/fuzz.bin";
  for (size_t pos = 0; pos < bytes->size(); ++pos) {
    for (int bit = 0; bit < 8; bit += 3) {  // 3 bits per byte keeps it fast
      std::string corrupted = *bytes;
      corrupted[pos] = static_cast<char>(corrupted[pos] ^ (1 << bit));
      {
        std::ofstream out(fuzz_path, std::ios::binary | std::ios::trunc);
        out.write(corrupted.data(),
                  static_cast<std::streamsize>(corrupted.size()));
      }
      auto loaded = LoadCheckpoint(nullptr, fuzz_path, "");
      EXPECT_FALSE(loaded.ok())
          << "bit flip at byte " << pos << " bit " << bit << " parsed";
    }
  }
  RemoveDirRecursive(dir);
}

TEST(CheckpointTest, RotationKeepsNewestK) {
  const std::string dir = MakeTempDir("ckpt_rot");
  CheckpointConfig config;
  config.dir = dir;
  config.keep_last = 2;
  CheckpointManager manager(config, "test-model d=4");
  for (int64_t epoch = 1; epoch <= 5; ++epoch) {
    ASSERT_TRUE(manager.Save(MakeState(epoch)).ok());
  }
  EXPECT_EQ(manager.ListEpochs(), (std::vector<int64_t>{4, 5}));
  auto latest = manager.LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->epoch, 5);
  RemoveDirRecursive(dir);
}

TEST(CheckpointTest, LoadLatestSkipsCorruptNewest) {
  const std::string dir = MakeTempDir("ckpt_skip");
  CheckpointConfig config;
  config.dir = dir;
  config.keep_last = 3;
  CheckpointManager manager(config, "test-model d=4");
  ASSERT_TRUE(manager.Save(MakeState(1)).ok());
  ASSERT_TRUE(manager.Save(MakeState(2)).ok());
  {
    std::ofstream out(manager.PathForEpoch(2),
                      std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  auto latest = manager.LoadLatest();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->epoch, 1);
  RemoveDirRecursive(dir);
}

TEST(CheckpointTest, LoadLatestOnEmptyDirIsNotFound) {
  const std::string dir = MakeTempDir("ckpt_empty");
  CheckpointConfig config;
  config.dir = dir;
  CheckpointManager manager(config, "");
  auto latest = manager.LoadLatest();
  ASSERT_FALSE(latest.ok());
  EXPECT_EQ(latest.status().code(), StatusCode::kNotFound);
  RemoveDirRecursive(dir);
}

TEST(EnvelopeTest, WrongMagicAndVersionRejected) {
  const std::string dir = MakeTempDir("env_magic");
  const std::string path = dir + "/file.bin";
  Env* env = Env::Default();
  ASSERT_TRUE(WriteEnvelopeFile(env, path, 0x1111, 3, "payload").ok());
  EXPECT_TRUE(ReadEnvelopeFile(env, path, 0x1111, 3, 3).ok());
  EXPECT_FALSE(ReadEnvelopeFile(env, path, 0x2222, 3, 3).ok());  // magic
  EXPECT_FALSE(ReadEnvelopeFile(env, path, 0x1111, 4, 9).ok());  // version
  auto magic = PeekFileMagic(env, path);
  ASSERT_TRUE(magic.ok());
  EXPECT_EQ(*magic, 0x1111u);
  RemoveDirRecursive(dir);
}

}  // namespace
}  // namespace stisan::train
