// Tests for the reusable train::Trainer: non-finite loss/gradient guards,
// graceful stop requests, checkpoint/resume determinism on a small
// synthetic problem, and serialization of the LR schedule and
// early-stopping monitor (same LR sequence / stop decisions after a
// round-trip).

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "tensor/ops.h"
#include "train/early_stopping.h"
#include "train/lr_schedule.h"
#include "train/signal.h"
#include "train/trainer.h"
#include "util/io_env.h"
#include "util/serialize.h"

namespace stisan::train {
namespace {

std::string MakeTempDir(const char* tag) {
  std::string tmpl = std::string("/tmp/stisan_") + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* dir = mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir ? std::string(dir) : std::string();
}

void RemoveDirRecursive(const std::string& dir) {
  Env* env = Env::Default();
  auto names = env->ListDir(dir);
  if (names.ok()) {
    for (const auto& name : *names) env->DeleteFile(dir + "/" + name);
  }
  rmdir(dir.c_str());
}

// A small noisy least-squares problem. The loss for window idx depends on
// the parameter AND on the model rng (like dropout / negative sampling in
// the real models), so resume determinism requires restoring the rng.
struct Problem {
  Tensor w = Tensor::Zeros({4}, true);
  Tensor targets = Tensor::FromVector({4}, {1.0f, -2.0f, 3.0f, 0.5f});
  Rng rng{123};

  Trainer::WindowLossFn LossFn() {
    return [this](size_t idx) {
      const float jitter = rng.UniformFloat(-0.01f, 0.01f);
      Tensor shifted = ops::AddScalar(targets, jitter);
      Tensor diff = w - shifted;
      return ops::MulScalar(ops::Sum(ops::Square(diff)),
                            0.5f + 0.01f * float(idx % 3));
    };
  }
};

TrainConfig SmallConfig() {
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 3;
  cfg.lr = 0.05f;
  cfg.cosine_decay = true;
  return cfg;
}

class TrainerTest : public ::testing::Test {
 protected:
  void SetUp() override { ClearStopRequest(); }
  void TearDown() override { ClearStopRequest(); }
};

TEST_F(TrainerTest, ConvergesAndReportsEpochs) {
  Problem p;
  Trainer trainer({p.w}, SmallConfig(), &p.rng);
  TrainResult result = trainer.Run(12, p.LossFn());
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.epochs_completed, 4);
  EXPECT_EQ(result.nonfinite_skipped, 0);
  EXPECT_FALSE(result.interrupted);
  EXPECT_FALSE(result.resumed);
  EXPECT_GT(result.last_epoch_loss, 0.0f);
}

TEST_F(TrainerTest, DeterministicAcrossIdenticalRuns) {
  Problem a, b;
  Trainer ta({a.w}, SmallConfig(), &a.rng);
  Trainer tb({b.w}, SmallConfig(), &b.rng);
  ta.Run(12, a.LossFn());
  tb.Run(12, b.LossFn());
  EXPECT_EQ(a.w.ToVector(), b.w.ToVector());
}

TEST_F(TrainerTest, NonFiniteLossSkippedAndCounted) {
  Problem p;
  auto base = p.LossFn();
  int calls = 0;
  auto loss_fn = [&](size_t idx) {
    Tensor loss = base(idx);
    // Poison every 5th evaluated window with a NaN loss.
    if (++calls % 5 == 0) {
      return ops::MulScalar(loss, std::numeric_limits<float>::quiet_NaN());
    }
    return loss;
  };
  Trainer trainer({p.w}, SmallConfig(), &p.rng);
  TrainResult result = trainer.Run(12, loss_fn);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(result.nonfinite_skipped, 0);
  EXPECT_EQ(result.epochs_completed, 4);
  for (float v : p.w.ToVector()) EXPECT_TRUE(std::isfinite(v));
}

TEST_F(TrainerTest, AbortsAfterConsecutiveNonFiniteLosses) {
  Problem p;
  auto loss_fn = [&](size_t idx) {
    return ops::MulScalar(p.LossFn()(idx),
                          std::numeric_limits<float>::infinity());
  };
  TrainConfig cfg = SmallConfig();
  cfg.max_consecutive_nonfinite = 4;
  Trainer trainer({p.w}, cfg, &p.rng);
  TrainResult result = trainer.Run(12, loss_fn);
  ASSERT_FALSE(result.status.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  EXPECT_EQ(result.nonfinite_skipped, 4);
  // The guard fired before any poisoned gradient reached the weights.
  EXPECT_EQ(p.w.ToVector(), std::vector<float>(4, 0.0f));
}

TEST_F(TrainerTest, StopRequestInterruptsAndCheckpointResumeCompletes) {
  const std::string dir = MakeTempDir("trainer_stop");
  TrainConfig cfg = SmallConfig();
  cfg.checkpoint.dir = dir;

  Problem p;
  auto base = p.LossFn();
  int windows_seen = 0;
  auto stopping_loss = [&](size_t idx) {
    if (++windows_seen == 17) RequestStop();  // mid-epoch-2 stop
    return base(idx);
  };
  Trainer interrupted({p.w}, cfg, &p.rng, "toy");
  TrainResult r1 = interrupted.Run(12, stopping_loss);
  ASSERT_TRUE(r1.status.ok()) << r1.status.ToString();
  EXPECT_TRUE(r1.interrupted);
  EXPECT_LT(r1.epochs_completed, cfg.epochs);

  ClearStopRequest();
  cfg.checkpoint.resume = true;
  Trainer resumed({p.w}, cfg, &p.rng, "toy");
  TrainResult r2 = resumed.Run(12, base);
  ASSERT_TRUE(r2.status.ok()) << r2.status.ToString();
  EXPECT_TRUE(r2.resumed);
  EXPECT_FALSE(r2.interrupted);
  EXPECT_EQ(r2.epochs_completed, cfg.epochs);
  RemoveDirRecursive(dir);
}

// The headline contract at toy scale: kill mid-epoch, resume, and the final
// parameters are bit-identical to an uninterrupted run.
TEST_F(TrainerTest, KillAndResumeBitIdenticalToUninterrupted) {
  // Uninterrupted reference run.
  Problem ref;
  Trainer reference({ref.w}, SmallConfig(), &ref.rng);
  ASSERT_TRUE(reference.Run(12, ref.LossFn()).status.ok());

  const std::string dir = MakeTempDir("trainer_resume");
  TrainConfig cfg = SmallConfig();
  cfg.checkpoint.dir = dir;

  Problem p;
  auto base = p.LossFn();
  int windows_seen = 0;
  auto stopping_loss = [&](size_t idx) {
    if (++windows_seen == 20) RequestStop();
    return base(idx);
  };
  Trainer interrupted({p.w}, cfg, &p.rng, "toy");
  ASSERT_TRUE(interrupted.Run(12, stopping_loss).interrupted);

  // Fresh "process": new parameter tensor and rng, state comes from disk.
  Problem q;
  cfg.checkpoint.resume = true;
  ClearStopRequest();
  Trainer resumed({q.w}, cfg, &q.rng, "toy");
  TrainResult r = resumed.Run(12, q.LossFn());
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  EXPECT_TRUE(r.resumed);
  EXPECT_EQ(q.w.ToVector(), ref.w.ToVector());
  RemoveDirRecursive(dir);
}

TEST_F(TrainerTest, ResumeIntoMismatchedShapesFails) {
  const std::string dir = MakeTempDir("trainer_shape");
  TrainConfig cfg = SmallConfig();
  cfg.checkpoint.dir = dir;
  Problem p;
  Trainer first({p.w}, cfg, &p.rng);
  ASSERT_TRUE(first.Run(12, p.LossFn()).status.ok());

  Tensor other = Tensor::Zeros({6}, true);
  Rng rng(9);
  cfg.checkpoint.resume = true;
  Trainer mismatched({other}, cfg, &rng);
  TrainResult r = mismatched.Run(12, [&](size_t) {
    return ops::Sum(ops::Square(other));
  });
  // The only checkpoint on disk has 4-element parameters; resuming a
  // 6-element model must surface a clean error, not restore garbage.
  ASSERT_FALSE(r.status.ok());
  RemoveDirRecursive(dir);
}

// ---- LR schedule / early stopping serialization (satellite) ----------------

TEST(CosineLrSerializationTest, RestoredScheduleProducesSameLrSequence) {
  CosineLr original(0.01f, 500, 0.001f, 25);
  std::string buffer;
  BinaryWriter w(&buffer);
  original.Save(w);
  ASSERT_TRUE(w.ok());

  CosineLr restored(1.0f, 1);  // deliberately different before Load
  BinaryReader r = BinaryReader::FromBuffer(buffer);
  ASSERT_TRUE(restored.Load(r).ok());
  for (int64_t step = 0; step < 600; step += 7) {
    EXPECT_EQ(original.Lr(step), restored.Lr(step)) << "step " << step;
  }
}

TEST(CosineLrSerializationTest, CorruptStateRejected) {
  std::string buffer;
  BinaryWriter w(&buffer);
  w.WriteF32(0.01f);
  w.WriteI64(-5);  // total_steps must be positive
  w.WriteF32(0.001f);
  w.WriteI64(0);
  CosineLr schedule(0.5f, 10);
  BinaryReader r = BinaryReader::FromBuffer(buffer);
  EXPECT_FALSE(schedule.Load(r).ok());
  EXPECT_EQ(schedule.Lr(0), 0.5f);  // unchanged on failure

  BinaryReader empty = BinaryReader::FromBuffer("");
  EXPECT_FALSE(schedule.Load(empty).ok());
}

TEST(EarlyStoppingSerializationTest, RestoredMonitorMakesSameDecisions) {
  const std::vector<double> metrics = {0.10, 0.15, 0.15, 0.151,
                                       0.14, 0.13, 0.12};
  // Feed the first three epochs, snapshot, then compare the remaining
  // decisions between the original and a restored copy.
  EarlyStopping original(2, 1e-3);
  for (int i = 0; i < 3; ++i) original.ShouldStop(metrics[size_t(i)]);

  std::string buffer;
  BinaryWriter w(&buffer);
  original.Save(w);
  ASSERT_TRUE(w.ok());
  EarlyStopping restored(99, 0.5);  // different config before Load
  BinaryReader r = BinaryReader::FromBuffer(buffer);
  ASSERT_TRUE(restored.Load(r).ok());

  EXPECT_EQ(original.best_metric(), restored.best_metric());
  EXPECT_EQ(original.best_epoch(), restored.best_epoch());
  EXPECT_EQ(original.epochs_seen(), restored.epochs_seen());
  for (size_t i = 3; i < metrics.size(); ++i) {
    EXPECT_EQ(original.ShouldStop(metrics[i]), restored.ShouldStop(metrics[i]))
        << "epoch " << i;
  }
}

TEST(EarlyStoppingSerializationTest, CorruptStateRejected) {
  std::string buffer;
  BinaryWriter w(&buffer);
  w.WriteI64(0);  // patience must be >= 1
  w.WriteF64(1e-4);
  w.WriteF64(0.5);
  w.WriteI64(0);
  w.WriteI64(1);
  w.WriteI64(0);
  EarlyStopping monitor(3);
  BinaryReader r = BinaryReader::FromBuffer(buffer);
  EXPECT_FALSE(monitor.Load(r).ok());
  EXPECT_EQ(monitor.epochs_seen(), 0);  // unchanged on failure

  BinaryReader truncated = BinaryReader::FromBuffer("abc");
  EXPECT_FALSE(monitor.Load(truncated).ok());
}

}  // namespace
}  // namespace stisan::train
