// The headline crash-safety guarantee, pinned on the golden pipeline
// configuration: kill training at an epoch boundary, resume in a fresh
// model, and both the final parameters and the evaluation metrics are
// BIT-IDENTICAL to an uninterrupted run — compared exactly (EXPECT_EQ on
// floats/doubles, i.e. %.17g-grade), at kernel thread counts 1 and 4.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/stisan.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "tensor/kernels.h"
#include "train/signal.h"
#include "util/io_env.h"

namespace stisan {
namespace {

std::string MakeTempDir(const char* tag) {
  std::string tmpl = std::string("/tmp/stisan_") + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  const char* dir = mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir ? std::string(dir) : std::string();
}

void RemoveDirRecursive(const std::string& dir) {
  Env* env = Env::Default();
  auto names = env->ListDir(dir);
  if (names.ok()) {
    for (const auto& name : *names) env->DeleteFile(dir + "/" + name);
  }
  rmdir(dir.c_str());
}

// The golden-metrics pipeline configuration (tools/golden_pipeline.h) plus
// checkpointing knobs.
core::StisanOptions PinnedOptions(const std::string& ckpt_dir, bool resume) {
  core::StisanOptions options;
  options.poi_dim = 8;
  options.geo.dim = 8;
  options.geo.fourier_dim = 4;
  options.num_blocks = 1;
  options.train.epochs = 2;
  options.train.seed = 20220501;
  options.train.max_train_windows = 60;
  options.train.checkpoint.dir = ckpt_dir;
  options.train.checkpoint.resume = resume;
  return options;
}

struct PipelineOutcome {
  std::vector<float> params;
  std::map<std::string, double> metrics;
  train::TrainResult train_result;
};

// Runs generate -> train -> evaluate. When `interrupt` is set, a stop is
// requested from the first epoch's on_epoch callback, which kills training
// at the epoch-1 boundary (checkpoint written, eval skipped).
PipelineOutcome RunPipeline(const std::string& ckpt_dir, bool resume,
                            bool interrupt) {
  auto dataset = data::GenerateSynthetic(data::GowallaLikeConfig(0.08));
  auto split = data::TrainTestSplit(dataset, {.max_seq_len = 12});

  core::StisanOptions options = PinnedOptions(ckpt_dir, resume);
  if (interrupt) {
    options.train.on_epoch = [](const train::EpochStats& stats) {
      if (stats.epoch == 0) train::RequestStop();
      return true;
    };
  }
  core::StisanModel model(dataset, options);
  model.Fit(dataset, split.train);

  PipelineOutcome out;
  out.train_result = model.last_train_result();
  for (const Tensor& p : model.Parameters()) {
    const auto v = p.ToVector();
    out.params.insert(out.params.end(), v.begin(), v.end());
  }
  if (!out.train_result.interrupted) {
    eval::CandidateGenerator generator(dataset);
    eval::EvalOptions eval_options;
    eval_options.num_negatives = 50;
    eval_options.batch_size = 8;
    auto acc = eval::Evaluate(static_cast<eval::BatchScorer&>(model),
                              split.test, generator, eval_options);
    out.metrics = acc.Means();
    out.metrics["MRR"] = acc.MeanReciprocalRank();
  }
  return out;
}

class ResumeDeterminismTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { train::ClearStopRequest(); }
  void TearDown() override {
    train::ClearStopRequest();
    kernels::SetNumThreads(1);
  }
};

TEST_P(ResumeDeterminismTest, KillAtEpochBoundaryThenResumeIsBitIdentical) {
  kernels::SetNumThreads(GetParam());

  // Reference: uninterrupted two-epoch run, no checkpointing in the loop.
  PipelineOutcome reference = RunPipeline("", false, false);
  ASSERT_TRUE(reference.train_result.status.ok())
      << reference.train_result.status.ToString();
  ASSERT_EQ(reference.train_result.epochs_completed, 2);
  ASSERT_FALSE(reference.metrics.empty());

  // Kill after epoch 1, in a process-fresh model resume and finish.
  const std::string dir = MakeTempDir("resume_det");
  PipelineOutcome killed = RunPipeline(dir, false, true);
  ASSERT_TRUE(killed.train_result.status.ok())
      << killed.train_result.status.ToString();
  ASSERT_TRUE(killed.train_result.interrupted);
  ASSERT_EQ(killed.train_result.epochs_completed, 1);

  train::ClearStopRequest();
  PipelineOutcome resumed = RunPipeline(dir, true, false);
  ASSERT_TRUE(resumed.train_result.status.ok())
      << resumed.train_result.status.ToString();
  ASSERT_TRUE(resumed.train_result.resumed);
  ASSERT_FALSE(resumed.train_result.interrupted);
  ASSERT_EQ(resumed.train_result.epochs_completed, 2);

  // Exact comparison: every parameter bit and every metric digit.
  ASSERT_EQ(reference.params.size(), resumed.params.size());
  for (size_t i = 0; i < reference.params.size(); ++i) {
    ASSERT_EQ(reference.params[i], resumed.params[i]) << "param elem " << i;
  }
  ASSERT_EQ(reference.metrics.size(), resumed.metrics.size());
  for (const auto& [name, value] : reference.metrics) {
    ASSERT_TRUE(resumed.metrics.contains(name)) << name;
    EXPECT_EQ(value, resumed.metrics.at(name)) << name;
  }
  RemoveDirRecursive(dir);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ResumeDeterminismTest,
                         ::testing::Values(1, 4));

}  // namespace
}  // namespace stisan
