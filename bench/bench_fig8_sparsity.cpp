// Fig. 8 + Table V reproduction: sensitivity to dataset sparsity.
//
// The paper filters Weeplaces at four increasingly aggressive cold
// thresholds (Table V) and compares STiSAN with GeoSAN and STAN at each
// sparsity level. Expected shape: STiSAN on top at every level; all models
// rise as data densifies, then fall at the densest level where too few
// users/POIs remain for training.

#include "bench_common.h"
#include "data/preprocess.h"
#include "models/geosan.h"
#include "models/stan.h"

using namespace stisan;

int main() {
  const double scale = bench::BenchScale(0.45);
  auto cfg = data::WeeplacesLikeConfig(scale);
  data::Dataset base = data::GenerateSynthetic(cfg);
  std::printf("Fig. 8 / Table V: sparsity sensitivity (%s)\n\n",
              cfg.name.c_str());

  // Cold thresholds shaped like the paper's Table V (scaled to the smaller
  // synthetic sequences; the paper uses POI 30/60/80/90, user 60/120/140/150
  // on sequences averaging 325 visits).
  struct Level {
    int64_t poi_threshold;
    int64_t user_threshold;
  };
  const std::vector<Level> levels = {{5, 40}, {10, 60}, {15, 80}, {20, 100}};

  std::printf("%-24s %8s %8s %10s %9s\n", "level(poi/user)", "#users",
              "#POIs", "#checkins", "sparsity");
  std::vector<data::Dataset> datasets;
  for (const auto& level : levels) {
    data::Dataset filtered = data::FilterCold(
        base, {.min_user_checkins = level.user_threshold,
               .min_poi_checkins = level.poi_threshold});
    auto s = filtered.Stats();
    std::printf("%9lld/%-13lld %8lld %8lld %10lld %8.2f%%\n",
                static_cast<long long>(level.poi_threshold),
                static_cast<long long>(level.user_threshold),
                static_cast<long long>(s.num_users),
                static_cast<long long>(s.num_pois),
                static_cast<long long>(s.num_checkins), s.sparsity * 100.0);
    datasets.push_back(std::move(filtered));
  }
  std::printf("\n");

  const float temperature = bench::DatasetTemperature(cfg.name);
  std::printf("%-24s %10s %10s %10s\n", "level(poi/user)", "GeoSAN",
              "STAN", "STiSAN");
  for (size_t k = 0; k < datasets.size(); ++k) {
    const auto& ds = datasets[k];
    if (ds.num_users() < 5 || ds.num_pois() < 20) {
      std::printf("%9lld/%-13lld   (too little data after filtering)\n",
                  static_cast<long long>(levels[k].poi_threshold),
                  static_cast<long long>(levels[k].user_threshold));
      continue;
    }
    bench::PreparedDataset prep;
    prep.dataset = ds;
    prep.split = data::TrainTestSplit(prep.dataset, {.max_seq_len = 32});
    prep.candidates =
        std::make_unique<eval::CandidateGenerator>(prep.dataset);

    auto st = bench::BenchStisanOptions(temperature);
    models::GeoSanModel geosan(prep.dataset, st);
    auto acc_geosan = bench::FitAndEvaluate(geosan, prep);

    models::StanOptions so;
    so.base.dim = 32;
    so.base.train = bench::BenchTrainConfig(temperature);
    models::StanModel stan(prep.dataset, so);
    auto acc_stan = bench::FitAndEvaluate(stan, prep);

    core::StisanModel stisan(prep.dataset, st);
    auto acc_stisan = bench::FitAndEvaluate(stisan, prep);

    std::printf("%9lld/%-13lld %10.4f %10.4f %10.4f   (HR@10)\n",
                static_cast<long long>(levels[k].poi_threshold),
                static_cast<long long>(levels[k].user_threshold),
                acc_geosan.HitRate(10), acc_stan.HitRate(10),
                acc_stisan.HitRate(10));
    std::fflush(stdout);
  }
  std::printf("\npaper: STiSAN above GeoSAN/STAN at every sparsity level;\n"
              "accuracy rises then falls as the dataset densifies (the\n"
              "densest level under-fits on too few users).\n");
  return 0;
}
