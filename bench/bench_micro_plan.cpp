// Microbenchmarks for static execution plans (DESIGN.md §13): eager vs
// replay, train-step (forward+backward) and eval-batch (forward only) on
// the IAAB encoder trunk.
//
// Both modes run under a forced arena so "allocs_per_step" (fresh
// allocations per step, from the arena miss counter) is comparable: the
// eager rows show the pow2 pool's residual allocator traffic, the replay
// rows must show 0 — every buffer of a replayed step is served from the
// plan's exact-size reservations. Wall-clock deltas measure what the plan
// actually removes: the backward topological sort, allocator round-trips
// and the per-op dispatch the fused elementwise lowerings skip.
//
// Emit machine-readable results with:
//   ./bench_micro_plan --benchmark_format=json
// The checked-in BENCH_plan.json captures one JSON run.

#include <benchmark/benchmark.h>

#include "core/iaab.h"
#include "core/relation.h"
#include "plan/plan.h"
#include "tensor/arena.h"
#include "tensor/kernels.h"

namespace stisan::core {
namespace {

IaabOptions Options(int64_t d) {
  IaabOptions o;
  o.dim = d;
  o.ffn_hidden = 2 * d;
  o.dropout = 0.0f;
  return o;
}

// One training step: fresh input leaf, full forward, scalar loss, backward.
void RunTrainStep(benchmark::State& state, bool plan_on) {
  const int64_t n = state.range(0);
  const int64_t d = 32;
  plan::SetEnabledForTesting(plan_on ? 1 : 0);
  {
    Rng rng(7);
    IaabEncoder encoder(Options(d), 1, rng);
    Tensor rel = SoftmaxScaleRelation(Tensor::Zeros({n, n}), 0);
    Tensor mask = BuildPaddedCausalMask(n, 0);

    arena::ForcedScope forced;  // count allocator traffic in both modes
    arena::Scope pool;
    plan::Scope plan_scope;  // inert when plans are off
    auto step = [&] {
      plan::StepScope step_scope;
      Tensor x = Tensor::Randn({n, d}, rng, 1.0f, /*requires_grad=*/true);
      Tensor out = encoder.Forward(x, rel, mask, rng);
      ops::Sum(ops::Square(out)).Backward();
    };
    // Warm up outside the timed region: the capture step and the first
    // replay, so the steady replay state is what gets measured.
    step();
    step();
    for (Tensor p : encoder.Parameters()) p.ZeroGrad();

    const arena::Stats before = arena::GetStats();
    for (auto _ : state) {
      step();
      for (Tensor p : encoder.Parameters()) p.ZeroGrad();
    }
    const arena::Stats after = arena::GetStats();
    state.counters["allocs_per_step"] =
        static_cast<double>(after.misses - before.misses) /
        static_cast<double>(state.iterations());
  }
  plan::SetEnabledForTesting(-1);
}

void BM_PlanTrainStepEager(benchmark::State& state) {
  RunTrainStep(state, /*plan_on=*/false);
}
BENCHMARK(BM_PlanTrainStepEager)->Arg(32)->Arg(100);

void BM_PlanTrainStepReplay(benchmark::State& state) {
  RunTrainStep(state, /*plan_on=*/true);
}
BENCHMARK(BM_PlanTrainStepReplay)->Arg(32)->Arg(100);

// One eval batch: forward-only scoring of a fixed-shape input (eval mode,
// no gradients) — the evaluator's per-batch plan step.
void RunEvalBatch(benchmark::State& state, bool plan_on) {
  const int64_t n = state.range(0);
  const int64_t d = 32;
  plan::SetEnabledForTesting(plan_on ? 1 : 0);
  {
    Rng rng(7);
    IaabEncoder encoder(Options(d), 1, rng);
    encoder.SetTraining(false);
    Tensor rel = SoftmaxScaleRelation(Tensor::Zeros({n, n}), 0);
    Tensor mask = BuildPaddedCausalMask(n, 0);

    arena::ForcedScope forced;
    arena::Scope pool;
    plan::Scope plan_scope;
    auto batch = [&] {
      plan::StepScope step_scope;
      Tensor x = Tensor::Randn({n, d}, rng, 1.0f);
      Tensor out = encoder.Forward(x, rel, mask, rng);
      benchmark::DoNotOptimize(out.data());
    };
    batch();
    batch();

    const arena::Stats before = arena::GetStats();
    for (auto _ : state) batch();
    const arena::Stats after = arena::GetStats();
    state.counters["allocs_per_step"] =
        static_cast<double>(after.misses - before.misses) /
        static_cast<double>(state.iterations());
  }
  plan::SetEnabledForTesting(-1);
}

void BM_PlanEvalBatchEager(benchmark::State& state) {
  RunEvalBatch(state, /*plan_on=*/false);
}
BENCHMARK(BM_PlanEvalBatchEager)->Arg(32)->Arg(100);

void BM_PlanEvalBatchReplay(benchmark::State& state) {
  RunEvalBatch(state, /*plan_on=*/true);
}
BENCHMARK(BM_PlanEvalBatchReplay)->Arg(32)->Arg(100);

}  // namespace
}  // namespace stisan::core

BENCHMARK_MAIN();
