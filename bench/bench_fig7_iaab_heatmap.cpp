// Fig. 7 reproduction: interpretability of IAAB.
//
// The paper picks one user, plots the geography interval between each
// historical POI and the target, and compares the final-step attention of
// plain SA vs IAAB: IAAB concentrates attention on the spatially-close
// ("vital") POIs, including those far back in the sequence.
//
// This bench prints both attention rows next to the geography intervals
// and reports the attention mass each model puts on strongly-correlated
// (< 10 km) history steps.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "geo/geo.h"

using namespace stisan;

int main() {
  const double scale = bench::BenchScale(0.3);
  auto cfg = data::WeeplacesLikeConfig(scale);  // paper uses Weeplaces
  auto prep = bench::Prepare(cfg, /*max_seq_len=*/32);
  std::printf("Fig. 7: IAAB interpretability (%s)\n\n", cfg.name.c_str());

  const float temperature = bench::DatasetTemperature(cfg.name);
  auto sa_opts = bench::BenchStisanOptions(temperature);
  sa_opts.attention_mode = core::AttentionMode::kVanilla;
  auto iaab_opts = bench::BenchStisanOptions(temperature);

  core::StisanModel sa(prep.dataset, sa_opts);
  core::StisanModel iaab(prep.dataset, iaab_opts);
  sa.Fit(prep.dataset, prep.split.train);
  iaab.Fit(prep.dataset, prep.split.train);

  const data::EvalInstance* inst = &prep.split.test.front();
  for (const auto& candidate : prep.split.test) {
    if (candidate.first_real == 0) {
      inst = &candidate;
      break;
    }
  }
  const int64_t n = static_cast<int64_t>(inst->poi.size());
  const auto& target_loc = prep.dataset.poi_location(inst->target);

  Tensor map_sa = sa.AverageAttentionMap(inst->poi, inst->t,
                                         inst->first_real);
  Tensor map_iaab = iaab.AverageAttentionMap(inst->poi, inst->t,
                                             inst->first_real);

  std::printf("%6s %10s %10s %10s\n", "step", "geo-km", "SA att",
              "IAAB att");
  double mass_sa = 0, mass_iaab = 0, total_sa = 0, total_iaab = 0;
  for (int64_t j = inst->first_real; j < n; ++j) {
    const double km = geo::HaversineKm(
        prep.dataset.poi_location(inst->poi[size_t(j)]), target_loc);
    const double a_sa = map_sa.at({n - 1, j});
    const double a_iaab = map_iaab.at({n - 1, j});
    std::printf("%6lld %10.2f %10.4f %10.4f%s\n",
                static_cast<long long>(j), km, a_sa, a_iaab,
                km < 10.0 ? "  *" : "");
    total_sa += a_sa;
    total_iaab += a_iaab;
    if (km < 10.0) {
      mass_sa += a_sa;
      mass_iaab += a_iaab;
    }
  }
  std::printf(
      "\nattention mass on strong-spatial-correlation steps (* = < 10 km):\n"
      "  SA   %5.1f%%\n  IAAB %5.1f%%\n"
      "paper: IAAB pays markedly more attention to these vital POIs,\n"
      "including ones early in the sequence.\n",
      100.0 * mass_sa / std::max(1e-9, total_sa),
      100.0 * mass_iaab / std::max(1e-9, total_iaab));
  return 0;
}
