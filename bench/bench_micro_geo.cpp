// Microbenchmarks for the geographic substrate (google-benchmark).

#include <benchmark/benchmark.h>

#include "geo/geo.h"
#include "geo/quadkey.h"
#include "geo/spatial_index.h"
#include "util/rng.h"

namespace stisan::geo {
namespace {

std::vector<GeoPoint> RandomCity(int64_t n, uint64_t seed) {
  Rng rng(seed);
  GeoPoint center{43.88, 125.35};
  std::vector<GeoPoint> pts;
  pts.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    pts.push_back(OffsetKm(center, rng.Normal(0, 8), rng.Normal(0, 8)));
  }
  return pts;
}

void BM_Haversine(benchmark::State& state) {
  GeoPoint a{43.88, 125.35}, b{43.99, 125.11};
  for (auto _ : state) {
    benchmark::DoNotOptimize(HaversineKm(a, b));
  }
}
BENCHMARK(BM_Haversine);

void BM_QuadKeyEncode(benchmark::State& state) {
  GeoPoint p{43.88, 125.35};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ToQuadKey(p, 17));
  }
}
BENCHMARK(BM_QuadKeyEncode);

void BM_IndexBuild(benchmark::State& state) {
  auto pts = RandomCity(state.range(0), 11);
  for (auto _ : state) {
    SpatialGridIndex index(pts);
    benchmark::DoNotOptimize(index.size());
  }
}
BENCHMARK(BM_IndexBuild)->Arg(1000)->Arg(10000);

void BM_KNearest100(benchmark::State& state) {
  auto pts = RandomCity(state.range(0), 13);
  SpatialGridIndex index(pts);
  Rng rng(17);
  for (auto _ : state) {
    const auto& q = pts[rng.UniformInt(static_cast<uint64_t>(pts.size()))];
    benchmark::DoNotOptimize(index.KNearest(q, 100));
  }
}
BENCHMARK(BM_KNearest100)->Arg(1000)->Arg(10000);

void BM_WithinRadius(benchmark::State& state) {
  auto pts = RandomCity(5000, 19);
  SpatialGridIndex index(pts);
  Rng rng(23);
  for (auto _ : state) {
    const auto& q = pts[rng.UniformInt(static_cast<uint64_t>(pts.size()))];
    benchmark::DoNotOptimize(index.WithinRadius(q, 4.0));
  }
}
BENCHMARK(BM_WithinRadius);

}  // namespace
}  // namespace stisan::geo

BENCHMARK_MAIN();
