// Microbenchmarks for the attention stack: vanilla SA block vs IAAB,
// forward and forward+backward (google-benchmark). The FLOPs claim of
// Table VI in wall-clock form at op granularity.
//
// Emit machine-readable results with:
//   ./bench_micro_attention --benchmark_format=json
//
// The *_Threads benchmarks take (n, threads) pairs at the paper's STiSAN
// shape (sequence n=100, attention dim d=32); threads=0 means "hardware
// concurrency". Each run re-sizes the global kernel pool and reports the
// effective worker count in the "threads" counter, so serial vs threaded
// forwards can be compared from one binary.

#include <benchmark/benchmark.h>

#include "core/iaab.h"
#include "core/relation.h"
#include "tensor/kernels.h"

namespace stisan::core {
namespace {

IaabOptions Options(AttentionMode mode, int64_t d) {
  IaabOptions o;
  o.dim = d;
  o.ffn_hidden = 2 * d;
  o.dropout = 0.0f;
  o.mode = mode;
  return o;
}

void RunBlock(benchmark::State& state, AttentionMode mode, bool backward) {
  const int64_t n = state.range(0);
  const int64_t d = 32;
  Rng rng(7);
  IntervalAwareAttentionBlock block(Options(mode, d), rng);
  block.SetTraining(false);
  Tensor rel = SoftmaxScaleRelation(Tensor::Zeros({n, n}), 0);
  Tensor mask = BuildPaddedCausalMask(n, 0);
  for (auto _ : state) {
    Tensor x = Tensor::Randn({n, d}, rng, 1.0f, backward);
    Tensor out = block.Forward(x, rel, mask, rng);
    if (backward) {
      ops::Sum(ops::Square(out)).Backward();
    }
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_SaBlockForward(benchmark::State& state) {
  RunBlock(state, AttentionMode::kVanilla, false);
}
BENCHMARK(BM_SaBlockForward)->Arg(32)->Arg(64)->Arg(128);

void BM_IaabBlockForward(benchmark::State& state) {
  RunBlock(state, AttentionMode::kIntervalAware, false);
}
BENCHMARK(BM_IaabBlockForward)->Arg(32)->Arg(64)->Arg(128);

void BM_SaBlockTrainStep(benchmark::State& state) {
  RunBlock(state, AttentionMode::kVanilla, true);
}
BENCHMARK(BM_SaBlockTrainStep)->Arg(32)->Arg(64);

void BM_IaabBlockTrainStep(benchmark::State& state) {
  RunBlock(state, AttentionMode::kIntervalAware, true);
}
BENCHMARK(BM_IaabBlockTrainStep)->Arg(32)->Arg(64);

// STiSAN trunk (2-block interval-aware encoder, d=32) at the paper's
// sequence length n=100, serial vs threaded.
void RunEncoderThreads(benchmark::State& state, bool backward) {
  const int64_t n = state.range(0);
  const int64_t d = 32;
  kernels::SetNumThreads(state.range(1));
  Rng rng(9);
  IaabEncoder encoder(Options(AttentionMode::kIntervalAware, d), 2, rng);
  encoder.SetTraining(false);
  Tensor rel = SoftmaxScaleRelation(Tensor::Zeros({n, n}), 0);
  Tensor mask = BuildPaddedCausalMask(n, 0);
  for (auto _ : state) {
    Tensor x = Tensor::Randn({n, d}, rng, 1.0f, backward);
    Tensor out = encoder.Forward(x, rel, mask, rng);
    if (backward) {
      ops::Sum(ops::Square(out)).Backward();
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["threads"] = static_cast<double>(kernels::NumThreads());
  kernels::SetNumThreads(0);
}

void BM_StisanEncoderForwardThreads(benchmark::State& state) {
  RunEncoderThreads(state, false);
}
BENCHMARK(BM_StisanEncoderForwardThreads)
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 0});

void BM_StisanEncoderTrainStepThreads(benchmark::State& state) {
  RunEncoderThreads(state, true);
}
BENCHMARK(BM_StisanEncoderTrainStepThreads)->Args({100, 1})->Args({100, 0});

void BM_RelationMatrixBuild(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(8);
  std::vector<int64_t> pois(static_cast<size_t>(n));
  std::vector<double> ts(static_cast<size_t>(n));
  std::vector<geo::GeoPoint> coords(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    pois[size_t(i)] = i + 1;
    ts[size_t(i)] = double(i) * 3600.0;
    coords[size_t(i)] = {43.8 + 0.001 * double(i), 125.3};
  }
  for (auto _ : state) {
    Tensor r = BuildRelationMatrix(pois, ts, coords, 0, {});
    benchmark::DoNotOptimize(SoftmaxScaleRelation(r, 0).data());
  }
}
BENCHMARK(BM_RelationMatrixBuild)->Arg(32)->Arg(128);

}  // namespace
}  // namespace stisan::core

BENCHMARK_MAIN();
