// Microbenchmarks for the attention stack: vanilla SA block vs IAAB,
// forward and forward+backward (google-benchmark). The FLOPs claim of
// Table VI in wall-clock form at op granularity.

#include <benchmark/benchmark.h>

#include "core/iaab.h"
#include "core/relation.h"

namespace stisan::core {
namespace {

IaabOptions Options(AttentionMode mode, int64_t d) {
  IaabOptions o;
  o.dim = d;
  o.ffn_hidden = 2 * d;
  o.dropout = 0.0f;
  o.mode = mode;
  return o;
}

void RunBlock(benchmark::State& state, AttentionMode mode, bool backward) {
  const int64_t n = state.range(0);
  const int64_t d = 32;
  Rng rng(7);
  IntervalAwareAttentionBlock block(Options(mode, d), rng);
  block.SetTraining(false);
  Tensor rel = SoftmaxScaleRelation(Tensor::Zeros({n, n}), 0);
  Tensor mask = BuildPaddedCausalMask(n, 0);
  for (auto _ : state) {
    Tensor x = Tensor::Randn({n, d}, rng, 1.0f, backward);
    Tensor out = block.Forward(x, rel, mask, rng);
    if (backward) {
      ops::Sum(ops::Square(out)).Backward();
    }
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_SaBlockForward(benchmark::State& state) {
  RunBlock(state, AttentionMode::kVanilla, false);
}
BENCHMARK(BM_SaBlockForward)->Arg(32)->Arg(64)->Arg(128);

void BM_IaabBlockForward(benchmark::State& state) {
  RunBlock(state, AttentionMode::kIntervalAware, false);
}
BENCHMARK(BM_IaabBlockForward)->Arg(32)->Arg(64)->Arg(128);

void BM_SaBlockTrainStep(benchmark::State& state) {
  RunBlock(state, AttentionMode::kVanilla, true);
}
BENCHMARK(BM_SaBlockTrainStep)->Arg(32)->Arg(64);

void BM_IaabBlockTrainStep(benchmark::State& state) {
  RunBlock(state, AttentionMode::kIntervalAware, true);
}
BENCHMARK(BM_IaabBlockTrainStep)->Arg(32)->Arg(64);

void BM_RelationMatrixBuild(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(8);
  std::vector<int64_t> pois(static_cast<size_t>(n));
  std::vector<double> ts(static_cast<size_t>(n));
  std::vector<geo::GeoPoint> coords(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    pois[size_t(i)] = i + 1;
    ts[size_t(i)] = double(i) * 3600.0;
    coords[size_t(i)] = {43.8 + 0.001 * double(i), 125.3};
  }
  for (auto _ : state) {
    Tensor r = BuildRelationMatrix(pois, ts, coords, 0, {});
    benchmark::DoNotOptimize(SoftmaxScaleRelation(r, 0).data());
  }
}
BENCHMARK(BM_RelationMatrixBuild)->Arg(32)->Arg(128);

}  // namespace
}  // namespace stisan::core

BENCHMARK_MAIN();
