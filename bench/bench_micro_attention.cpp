// Microbenchmarks for the attention stack: vanilla SA block vs IAAB,
// forward and forward+backward (google-benchmark). The FLOPs claim of
// Table VI in wall-clock form at op granularity.
//
// Emit machine-readable results with:
//   ./bench_micro_attention --benchmark_format=json
//
// The *_Threads benchmarks take (n, threads) pairs at the paper's STiSAN
// shape (sequence n=100, attention dim d=32); threads=0 means "hardware
// concurrency". Each run re-sizes the global kernel pool and reports the
// effective worker count in the "threads" counter, so serial vs threaded
// forwards can be compared from one binary.

// The *Lowering* benchmarks compare the composed per-op attention path
// (STISAN_FUSED_ATTENTION=0) against the fused one-node lowering, forward
// and forward+backward, at (n, heads). BM_AttentionOp* measure the raw op
// chain without the q/k/v projection GEMMs so the fusion speedup is not
// diluted; the checked-in BENCH_attention.json captures one JSON run.

// The *Inference* benchmarks compare serving-mode forwards (no grad
// recording, fused lowering) across the three scoring backends: fp32 on
// the scalar reference kernels, fp32 on the runtime-dispatched SIMD
// kernels, and the dynamic int8 path (quantized projection GEMMs, fp32
// attention core) — the fp32-vs-SIMD-vs-int8 rows of BENCH_attention.json.

#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <optional>

#include "core/iaab.h"
#include "core/relation.h"
#include "nn/attention.h"
#include "quant/quant.h"
#include "tensor/kernels.h"

namespace stisan::core {
namespace {

IaabOptions Options(AttentionMode mode, int64_t d) {
  IaabOptions o;
  o.dim = d;
  o.ffn_hidden = 2 * d;
  o.dropout = 0.0f;
  o.mode = mode;
  return o;
}

void RunBlock(benchmark::State& state, AttentionMode mode, bool backward) {
  const int64_t n = state.range(0);
  const int64_t d = 32;
  Rng rng(7);
  IntervalAwareAttentionBlock block(Options(mode, d), rng);
  block.SetTraining(false);
  Tensor rel = SoftmaxScaleRelation(Tensor::Zeros({n, n}), 0);
  Tensor mask = BuildPaddedCausalMask(n, 0);
  for (auto _ : state) {
    Tensor x = Tensor::Randn({n, d}, rng, 1.0f, backward);
    Tensor out = block.Forward(x, rel, mask, rng);
    if (backward) {
      ops::Sum(ops::Square(out)).Backward();
    }
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_SaBlockForward(benchmark::State& state) {
  RunBlock(state, AttentionMode::kVanilla, false);
}
BENCHMARK(BM_SaBlockForward)->Arg(32)->Arg(64)->Arg(128);

void BM_IaabBlockForward(benchmark::State& state) {
  RunBlock(state, AttentionMode::kIntervalAware, false);
}
BENCHMARK(BM_IaabBlockForward)->Arg(32)->Arg(64)->Arg(128);

void BM_SaBlockTrainStep(benchmark::State& state) {
  RunBlock(state, AttentionMode::kVanilla, true);
}
BENCHMARK(BM_SaBlockTrainStep)->Arg(32)->Arg(64);

void BM_IaabBlockTrainStep(benchmark::State& state) {
  RunBlock(state, AttentionMode::kIntervalAware, true);
}
BENCHMARK(BM_IaabBlockTrainStep)->Arg(32)->Arg(64);

// STiSAN trunk (2-block interval-aware encoder, d=32) at the paper's
// sequence length n=100, serial vs threaded.
void RunEncoderThreads(benchmark::State& state, bool backward) {
  const int64_t n = state.range(0);
  const int64_t d = 32;
  kernels::SetNumThreads(state.range(1));
  Rng rng(9);
  IaabEncoder encoder(Options(AttentionMode::kIntervalAware, d), 2, rng);
  encoder.SetTraining(false);
  Tensor rel = SoftmaxScaleRelation(Tensor::Zeros({n, n}), 0);
  Tensor mask = BuildPaddedCausalMask(n, 0);
  for (auto _ : state) {
    Tensor x = Tensor::Randn({n, d}, rng, 1.0f, backward);
    Tensor out = encoder.Forward(x, rel, mask, rng);
    if (backward) {
      ops::Sum(ops::Square(out)).Backward();
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["threads"] = static_cast<double>(kernels::NumThreads());
  kernels::SetNumThreads(0);
}

void BM_StisanEncoderForwardThreads(benchmark::State& state) {
  RunEncoderThreads(state, false);
}
BENCHMARK(BM_StisanEncoderForwardThreads)
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 0});

void BM_StisanEncoderTrainStepThreads(benchmark::State& state) {
  RunEncoderThreads(state, true);
}
BENCHMARK(BM_StisanEncoderTrainStepThreads)->Args({100, 1})->Args({100, 0});

// Composed-vs-fused lowering of a full CausalSelfAttention module
// (projections + attention core) at (n, heads), d=32.
void RunLowering(benchmark::State& state, bool fused, bool backward) {
  const int64_t n = state.range(0);
  const int64_t heads = state.range(1);
  const int64_t d = 32;
  ops::SetFusedAttentionEnabled(fused ? 1 : 0);
  Rng rng(11);
  nn::CausalSelfAttention attn(d, /*dropout=*/0.0f, rng, /*causal=*/true,
                               /*identity_init_values=*/false, heads);
  attn.SetTraining(false);
  Tensor bias = SoftmaxScaleRelation(Tensor::Zeros({n, n}), 0);
  for (auto _ : state) {
    Tensor x = Tensor::Randn({n, d}, rng, 1.0f, backward);
    Tensor out = attn.Forward(x, bias, rng);
    if (backward) {
      ops::Sum(ops::Square(out)).Backward();
    }
    benchmark::DoNotOptimize(out.data());
  }
  ops::SetFusedAttentionEnabled(-1);
}

#define STISAN_LOWERING_ARGS \
  ->Args({32, 1})->Args({64, 1})->Args({128, 1})->Args({32, 2})->Args({64, 2})->Args({128, 2})

void BM_ComposedAttentionForward(benchmark::State& state) {
  RunLowering(state, /*fused=*/false, /*backward=*/false);
}
BENCHMARK(BM_ComposedAttentionForward) STISAN_LOWERING_ARGS;

void BM_FusedAttentionForward(benchmark::State& state) {
  RunLowering(state, /*fused=*/true, /*backward=*/false);
}
BENCHMARK(BM_FusedAttentionForward) STISAN_LOWERING_ARGS;

void BM_ComposedAttentionTrainStep(benchmark::State& state) {
  RunLowering(state, /*fused=*/false, /*backward=*/true);
}
BENCHMARK(BM_ComposedAttentionTrainStep) STISAN_LOWERING_ARGS;

void BM_FusedAttentionTrainStep(benchmark::State& state) {
  RunLowering(state, /*fused=*/true, /*backward=*/true);
}
BENCHMARK(BM_FusedAttentionTrainStep) STISAN_LOWERING_ARGS;

// Raw attention core softmax(qkᵀ·scale + mask + bias)v without the
// projection GEMMs: the composed op chain exactly as HeadAttention builds
// it vs the single fused node.
void RunAttentionOp(benchmark::State& state, bool fused, bool backward) {
  const int64_t n = state.range(0);
  const int64_t d = 32;
  const float scale = 1.0f / std::sqrt(float(d));
  Rng rng(13);
  Tensor bias = SoftmaxScaleRelation(Tensor::Zeros({n, n}), 0);
  for (auto _ : state) {
    Tensor q = Tensor::Randn({n, d}, rng, 1.0f, backward);
    Tensor k = Tensor::Randn({n, d}, rng, 1.0f, backward);
    Tensor v = Tensor::Randn({n, d}, rng, 1.0f, backward);
    Tensor out;
    if (fused) {
      out = ops::FusedAttention(q, k, v, bias, /*causal=*/true, scale);
    } else {
      Tensor logits =
          ops::MulScalar(ops::MatMul(q, ops::TransposeLast2(k)), scale);
      logits = logits + nn::BuildCausalMask(n);
      logits = logits + bias;
      out = ops::MatMul(ops::Softmax(logits), v);
    }
    if (backward) {
      ops::Sum(ops::Square(out)).Backward();
    }
    benchmark::DoNotOptimize(out.data());
  }
}

void BM_AttentionOpComposedForward(benchmark::State& state) {
  RunAttentionOp(state, /*fused=*/false, /*backward=*/false);
}
BENCHMARK(BM_AttentionOpComposedForward)->Arg(32)->Arg(64)->Arg(128);

void BM_AttentionOpFusedForward(benchmark::State& state) {
  RunAttentionOp(state, /*fused=*/true, /*backward=*/false);
}
BENCHMARK(BM_AttentionOpFusedForward)->Arg(32)->Arg(64)->Arg(128);

void BM_AttentionOpComposedTrainStep(benchmark::State& state) {
  RunAttentionOp(state, /*fused=*/false, /*backward=*/true);
}
BENCHMARK(BM_AttentionOpComposedTrainStep)->Arg(32)->Arg(64)->Arg(128);

void BM_AttentionOpFusedTrainStep(benchmark::State& state) {
  RunAttentionOp(state, /*fused=*/true, /*backward=*/true);
}
BENCHMARK(BM_AttentionOpFusedTrainStep)->Arg(32)->Arg(64)->Arg(128);

// Serving-mode CausalSelfAttention forward (projections + fused core,
// no grad recording) on the scalar fp32, SIMD fp32 and int8 backends.
void RunInferenceBackend(benchmark::State& state, int simd_mode, bool int8) {
  const int64_t n = state.range(0);
  const int64_t d = 64;
  kernels::SetSimdEnabledForTesting(simd_mode);
  ops::SetFusedAttentionEnabled(1);
  Rng rng(17);
  nn::CausalSelfAttention attn(d, /*dropout=*/0.0f, rng, /*causal=*/true,
                               /*identity_init_values=*/false, /*heads=*/1);
  attn.SetTraining(false);
  std::unique_ptr<quant::QuantizedModel> qm;
  if (int8) qm = std::make_unique<quant::QuantizedModel>(attn);
  Tensor bias = SoftmaxScaleRelation(Tensor::Zeros({n, n}), 0);
  {
    NoGradGuard no_grad;
    std::optional<quant::ScopedInt8> guard;
    if (int8) guard.emplace();
    for (auto _ : state) {
      Tensor x = Tensor::Randn({n, d}, rng);
      Tensor out = attn.Forward(x, bias, rng);
      benchmark::DoNotOptimize(out.data());
    }
  }
  ops::SetFusedAttentionEnabled(-1);
  kernels::SetSimdEnabledForTesting(-1);
}

void BM_InferenceAttentionFp32Scalar(benchmark::State& state) {
  RunInferenceBackend(state, /*simd_mode=*/0, /*int8=*/false);
}
BENCHMARK(BM_InferenceAttentionFp32Scalar)->Arg(32)->Arg(100)->Arg(128);

void BM_InferenceAttentionFp32Simd(benchmark::State& state) {
  RunInferenceBackend(state, /*simd_mode=*/1, /*int8=*/false);
}
BENCHMARK(BM_InferenceAttentionFp32Simd)->Arg(32)->Arg(100)->Arg(128);

void BM_InferenceAttentionInt8(benchmark::State& state) {
  RunInferenceBackend(state, /*simd_mode=*/1, /*int8=*/true);
}
BENCHMARK(BM_InferenceAttentionInt8)->Arg(32)->Arg(100)->Arg(128);

void BM_RelationMatrixBuild(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(8);
  std::vector<int64_t> pois(static_cast<size_t>(n));
  std::vector<double> ts(static_cast<size_t>(n));
  std::vector<geo::GeoPoint> coords(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    pois[size_t(i)] = i + 1;
    ts[size_t(i)] = double(i) * 3600.0;
    coords[size_t(i)] = {43.8 + 0.001 * double(i), 125.3};
  }
  for (auto _ : state) {
    Tensor r = BuildRelationMatrix(pois, ts, coords, 0, {});
    benchmark::DoNotOptimize(SoftmaxScaleRelation(r, 0).data());
  }
}
BENCHMARK(BM_RelationMatrixBuild)->Arg(32)->Arg(128);

}  // namespace
}  // namespace stisan::core

BENCHMARK_MAIN();
