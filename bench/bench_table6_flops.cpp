// Table VI reproduction: computational complexity (FLOPs) of a 4-layer
// vanilla self-attention stack vs 4 stacked IAABs.
//
// Paper (per-dataset forward FLOPs): SA 0.83M/0.13M/0.04M/8.75M vs IAAB
// 0.83M/0.14M/0.04M/8.76M — the IAAB increment is negligible. We report
// analytic counts for one forward pass over a full batch of each scaled
// dataset's evaluation set, plus measured wall-clock as a cross-check.

#include "bench_common.h"
#include "nn/flops.h"
#include "util/stopwatch.h"

using namespace stisan;

int main() {
  const double scale = bench::BenchScale(1.0);
  const int64_t n = 32;            // scaled max sequence length
  const int64_t d = 32;            // scaled model dim (paper: 100 / 256)
  const int64_t d_hidden = 2 * d;
  const int64_t layers = 4;

  std::printf("Table VI: FLOPs of %lld-layer SA vs IAAB (n=%lld, d=%lld)\n\n",
              static_cast<long long>(layers), static_cast<long long>(n),
              static_cast<long long>(d));
  std::printf("%-18s %12s %12s %12s %10s\n", "dataset", "#eval-seqs",
              "SA FLOPs", "IAAB FLOPs", "overhead");

  for (const auto& cfg : bench::PaperDatasetConfigs(scale)) {
    data::Dataset ds = data::GenerateSynthetic(cfg);
    data::Split split = data::TrainTestSplit(ds, {.max_seq_len = n});
    const int64_t seqs = static_cast<int64_t>(split.test.size());
    const int64_t sa = seqs * layers * nn::SaBlockFlops(n, d, d_hidden);
    const int64_t iaab = seqs * layers * nn::IaabBlockFlops(n, d, d_hidden);
    std::printf("%-18s %12lld %11.2fM %11.2fM %9.3f%%\n", cfg.name.c_str(),
                static_cast<long long>(seqs), double(sa) / 1e6,
                double(iaab) / 1e6, 100.0 * double(iaab - sa) / double(sa));
  }

  // Wall-clock cross-check on one dataset: a forward pass per test
  // sequence with vanilla vs interval-aware attention.
  auto cfg = data::GowallaLikeConfig(bench::FastMode() ? 0.1 : 0.25);
  auto prep = bench::Prepare(cfg, n);
  auto time_variant = [&](core::AttentionMode mode) {
    auto opts = bench::BenchStisanOptions();
    opts.attention_mode = mode;
    opts.num_blocks = layers;
    core::StisanModel model(prep.dataset, opts);
    // Inference only — no training needed for a complexity comparison.
    Stopwatch watch;
    for (const auto& inst : prep.split.test) {
      auto cands = prep.candidates->Candidates(inst, 100);
      (void)model.Score(inst, cands);
    }
    return watch.ElapsedSeconds();
  };
  const double t_sa = time_variant(core::AttentionMode::kVanilla);
  const double t_iaab = time_variant(core::AttentionMode::kIntervalAware);
  std::printf(
      "\nwall-clock cross-check (%zu eval sequences, %lld blocks):\n"
      "  SA   %.3fs\n  IAAB %.3fs (%+.1f%%)\n"
      "paper: the additional burden of IAAB is negligible (<= 0.01M).\n",
      prep.split.test.size(), static_cast<long long>(layers), t_sa, t_iaab,
      100.0 * (t_iaab / t_sa - 1.0));
  return 0;
}
