// Microbenchmarks for the serving runtime: CPU per request for the
// incremental engine (append one check-in, score candidates) against the
// cold full-recompute path at the same history lengths, plus the
// service-level pump loop with the session store and obs instrumentation
// in the hot path.
//
// Emit machine-readable results with:
//   ./bench_micro_serving --benchmark_format=json
//
// The checked-in BENCH_serving.json captures one JSON run at the paper's
// serving shape (history n=100, d=32, 2 blocks, 100 candidates). The
// acceptance ratio is BM_FullRecomputeScore / BM_IncrementalAppendScore
// cpu_time at Arg(100) — the incremental path does O(new-token) work per
// append while the full path re-encodes the whole prefix.
//
// Each benchmark iteration serves kReps requests at growing history
// lengths n..n+kReps-1 (the steady-state serving pattern); per-request
// wall latencies are accumulated across iterations and reported as
// p50_us / p99_us counters.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "core/incremental.h"
#include "core/stisan.h"
#include "data/synthetic.h"
#include "serve/service.h"
#include "util/rng.h"

namespace stisan {
namespace {

constexpr int64_t kReps = 16;        // requests per benchmark iteration
constexpr int64_t kCandidates = 100;  // top-N rerank shape

core::StisanOptions ServingModelOptions() {
  core::StisanOptions opts;         // defaults: d = 24 + 8 = 32, 2 blocks
  opts.use_tape = false;            // K/V-cache tier
  opts.knn_negatives = false;       // frozen model, no sampler build
  return opts;
}

struct ServingFixture {
  data::Dataset dataset;
  core::StisanModel model;
  std::vector<int64_t> pois;
  std::vector<double> timestamps;
  std::vector<int64_t> candidates;

  explicit ServingFixture(int64_t max_len)
      : dataset(data::GenerateSynthetic(data::GowallaLikeConfig(0.05))),
        model(dataset, ServingModelOptions()) {
    // Synthetic users rarely reach n=100 visits; fabricate one long
    // history with realistic inter-check-in gaps instead.
    Rng rng(23);
    double t = 1.0e9;
    for (int64_t i = 0; i < max_len; ++i) {
      pois.push_back(1 + static_cast<int64_t>(rng.UniformInt(
                             static_cast<uint64_t>(dataset.num_pois()))));
      t += 600.0 + static_cast<double>(rng.UniformInt(86400u));
      timestamps.push_back(t);
    }
    while (static_cast<int64_t>(candidates.size()) < kCandidates) {
      const int64_t poi = 1 + static_cast<int64_t>(rng.UniformInt(
                                  static_cast<uint64_t>(dataset.num_pois())));
      if (std::find(candidates.begin(), candidates.end(), poi) ==
          candidates.end()) {
        candidates.push_back(poi);
      }
    }
  }
};

void ReportLatencies(benchmark::State& state, std::vector<double>& lat_us) {
  if (lat_us.empty()) return;
  std::sort(lat_us.begin(), lat_us.end());
  state.counters["p50_us"] = lat_us[lat_us.size() / 2];
  state.counters["p99_us"] = lat_us[std::min(
      lat_us.size() - 1, static_cast<size_t>(0.99 * lat_us.size()))];
  state.SetItemsProcessed(state.iterations() * kReps);
}

// One request = append one check-in at history length n+r, then score
// kCandidates. The engine state is re-synced to length n outside the
// timed region, so the measurement is steady-state incremental serving.
void BM_IncrementalAppendScore(benchmark::State& state) {
  const int64_t n = state.range(0);
  static ServingFixture* fx = new ServingFixture(512);
  core::IncrementalScorer engine(&fx->model, n + kReps);
  auto session = engine.NewState();
  std::vector<double> lat_us;
  for (auto _ : state) {
    state.PauseTiming();
    session->Reset();
    std::vector<int64_t> pois(fx->pois.begin(), fx->pois.begin() + n);
    std::vector<double> ts(fx->timestamps.begin(),
                           fx->timestamps.begin() + n);
    engine.Sync(*session, pois, ts);  // warm cache to length n
    state.ResumeTiming();
    for (int64_t r = 0; r < kReps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      pois.push_back(fx->pois[n + r]);
      ts.push_back(fx->timestamps[n + r]);
      auto scores = engine.Score(*session, pois, ts, fx->candidates);
      benchmark::DoNotOptimize(scores.data());
      lat_us.push_back(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
    }
  }
  ReportLatencies(state, lat_us);
}
BENCHMARK(BM_IncrementalAppendScore)->Arg(20)->Arg(50)->Arg(100);

// The same requests served by a cold full forward over the whole prefix —
// what serving costs without the session cache.
void BM_FullRecomputeScore(benchmark::State& state) {
  const int64_t n = state.range(0);
  static ServingFixture* fx = new ServingFixture(512);
  std::vector<double> lat_us;
  for (auto _ : state) {
    for (int64_t r = 0; r < kReps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      data::EvalInstance inst;
      inst.first_real = 0;
      inst.poi.assign(fx->pois.begin(), fx->pois.begin() + n + r + 1);
      inst.t.assign(fx->timestamps.begin(),
                    fx->timestamps.begin() + n + r + 1);
      auto scores = fx->model.Score(inst, fx->candidates);
      benchmark::DoNotOptimize(scores.data());
      lat_us.push_back(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
    }
  }
  ReportLatencies(state, lat_us);
}
BENCHMARK(BM_FullRecomputeScore)->Arg(20)->Arg(50)->Arg(100);

// End-to-end service layer (session store, op queue, obs counters) in
// pump mode: the per-request overhead on top of the raw engine.
void BM_ServicePumpAppendScore(benchmark::State& state) {
  const int64_t n = state.range(0);
  static ServingFixture* fx = new ServingFixture(512);
  serve::ServeOptions so;
  so.max_seq_len = n + kReps;
  so.start_worker = false;
  std::vector<double> lat_us;
  int64_t user = 0;
  for (auto _ : state) {
    state.PauseTiming();
    serve::RecommendService service(&fx->model, so);
    ++user;  // fresh session per iteration
    for (int64_t i = 0; i < n; ++i) {
      service.Append(user, fx->pois[i], fx->timestamps[i]);
    }
    (void)service.Score(user, fx->candidates);  // warm cache to length n
    state.ResumeTiming();
    for (int64_t r = 0; r < kReps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      service.Append(user, fx->pois[n + r], fx->timestamps[n + r]);
      auto result = service.Score(user, fx->candidates);
      benchmark::DoNotOptimize(result.scores.data());
      lat_us.push_back(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
    }
  }
  ReportLatencies(state, lat_us);
}
BENCHMARK(BM_ServicePumpAppendScore)->Arg(100);

// The same pump-mode service with ServeOptions.use_int8: every incremental
// append/score runs through the quantized GEMM/gather hooks. Compared
// against BM_ServicePumpAppendScore this is the serving cost (or win) of
// the int8 path at the paper's serving shape — the int8 row of
// BENCH_serving.json.
void BM_ServicePumpAppendScoreInt8(benchmark::State& state) {
  const int64_t n = state.range(0);
  static ServingFixture* fx = new ServingFixture(512);
  serve::ServeOptions so;
  so.max_seq_len = n + kReps;
  so.start_worker = false;
  so.use_int8 = true;
  std::vector<double> lat_us;
  int64_t user = 0;
  for (auto _ : state) {
    state.PauseTiming();
    serve::RecommendService service(&fx->model, so);
    ++user;  // fresh session per iteration
    for (int64_t i = 0; i < n; ++i) {
      service.Append(user, fx->pois[i], fx->timestamps[i]);
    }
    (void)service.Score(user, fx->candidates);  // warm cache to length n
    state.ResumeTiming();
    for (int64_t r = 0; r < kReps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      service.Append(user, fx->pois[n + r], fx->timestamps[n + r]);
      auto result = service.Score(user, fx->candidates);
      benchmark::DoNotOptimize(result.scores.data());
      lat_us.push_back(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
    }
  }
  ReportLatencies(state, lat_us);
}
BENCHMARK(BM_ServicePumpAppendScoreInt8)->Arg(100);

// The same service path with the full overload-safety machinery armed —
// request validation (num_pois bound), bounded-queue admission
// accounting, per-request deadline bookkeeping and the stale-serve tier
// enabled (but never triggered: deadlines are comfortable and the queue
// never fills). Compared against BM_ServicePumpAppendScore this isolates
// what DESIGN.md §15 costs on the happy path.
void BM_ServicePumpOverloadGuards(benchmark::State& state) {
  const int64_t n = state.range(0);
  static ServingFixture* fx = new ServingFixture(512);
  serve::ServeOptions so;
  so.max_seq_len = n + kReps;
  so.start_worker = false;
  so.max_queue = 1024;  // bounded but never full in pump mode
  so.queue_policy = serve::QueuePolicy::kShedOldest;
  so.default_deadline_us = 60'000'000;  // comfortable: never expires
  so.allow_stale = true;
  so.num_pois = fx->dataset.num_pois();
  std::vector<double> lat_us;
  int64_t user = 0;
  for (auto _ : state) {
    state.PauseTiming();
    serve::RecommendService service(&fx->model, so);
    ++user;  // fresh session per iteration
    for (int64_t i = 0; i < n; ++i) {
      service.Append(user, fx->pois[i], fx->timestamps[i]);
    }
    (void)service.Score(user, fx->candidates);  // warm cache to length n
    state.ResumeTiming();
    for (int64_t r = 0; r < kReps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      service.Append(user, fx->pois[n + r], fx->timestamps[n + r]);
      auto result = service.Score(user, fx->candidates);
      benchmark::DoNotOptimize(result.scores.data());
      lat_us.push_back(std::chrono::duration<double, std::micro>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
    }
  }
  ReportLatencies(state, lat_us);
}
BENCHMARK(BM_ServicePumpOverloadGuards)->Arg(100);

}  // namespace
}  // namespace stisan

BENCHMARK_MAIN();
