// Microbenchmarks for the raw CPU kernels behind the encoder: Gemm,
// SoftmaxRows and LayerNormRows at the serving shapes (rows n in
// {32, 100, 128}, feature dim d in {50, 64}), each pinned to the scalar
// reference and to the runtime-dispatched SIMD backend, plus the dynamic
// int8 GEMM (quantize activations + int8 dot + dequantize — the exact
// work the quant hook does per Linear forward) against fp32.
//
// Emit machine-readable results with:
//   ./bench_micro_kernels --benchmark_format=json
//
// The checked-in BENCH_kernels.json captures one JSON run from the
// release preset (build-bench). The ISSUE acceptance ratio is
// BM_GemmScalar / BM_GemmSimd cpu_time at (100, 64): the AVX2 backend
// must be at least 2x faster on one core. The context keys
// "stisan_build_type" / "stisan_simd_backend" record the compile mode and
// the dispatched backend ("library_build_type" describes the system
// libbenchmark, not this code).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "quant/int8_gemm.h"
#include "tensor/kernels.h"
#include "util/rng.h"

namespace stisan {
namespace {

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.Normal());
  return v;
}

class ScopedSimd {
 public:
  explicit ScopedSimd(int mode) { kernels::SetSimdEnabledForTesting(mode); }
  ~ScopedSimd() { kernels::SetSimdEnabledForTesting(-1); }
};

// [n, d] x [d, d] — the Linear-projection shape inside every block.
void RunGemm(benchmark::State& state, int simd_mode) {
  const int64_t n = state.range(0), d = state.range(1);
  ScopedSimd guard(simd_mode);
  const auto a = RandomVec(static_cast<size_t>(n * d), 1);
  const auto b = RandomVec(static_cast<size_t>(d * d), 2);
  std::vector<float> c(static_cast<size_t>(n * d));
  for (auto _ : state) {
    kernels::Gemm(a.data(), b.data(), c.data(), n, d, d, false, false, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(2 * n * d * d), benchmark::Counter::kIsRate);
}

#define STISAN_KERNEL_SHAPES \
  ->Args({32, 50})->Args({32, 64})->Args({100, 50})->Args({100, 64})->Args({128, 50})->Args({128, 64})

void BM_GemmScalar(benchmark::State& state) { RunGemm(state, 0); }
BENCHMARK(BM_GemmScalar) STISAN_KERNEL_SHAPES;

void BM_GemmSimd(benchmark::State& state) { RunGemm(state, 1); }
BENCHMARK(BM_GemmSimd) STISAN_KERNEL_SHAPES;

void RunSoftmaxRows(benchmark::State& state, int simd_mode) {
  const int64_t n = state.range(0), d = state.range(1);
  ScopedSimd guard(simd_mode);
  const auto x = RandomVec(static_cast<size_t>(n * d), 3);
  std::vector<float> y(x.size());
  for (auto _ : state) {
    kernels::SoftmaxRows(x.data(), y.data(), n, d);
    benchmark::DoNotOptimize(y.data());
  }
}

void BM_SoftmaxRowsScalar(benchmark::State& state) { RunSoftmaxRows(state, 0); }
BENCHMARK(BM_SoftmaxRowsScalar) STISAN_KERNEL_SHAPES;

void BM_SoftmaxRowsSimd(benchmark::State& state) { RunSoftmaxRows(state, 1); }
BENCHMARK(BM_SoftmaxRowsSimd) STISAN_KERNEL_SHAPES;

void RunLayerNormRows(benchmark::State& state, int simd_mode) {
  const int64_t n = state.range(0), d = state.range(1);
  ScopedSimd guard(simd_mode);
  const auto x = RandomVec(static_cast<size_t>(n * d), 4);
  const auto gamma = RandomVec(static_cast<size_t>(d), 5);
  const auto beta = RandomVec(static_cast<size_t>(d), 6);
  std::vector<float> y(x.size());
  std::vector<float> mu(static_cast<size_t>(n)), is(static_cast<size_t>(n));
  for (auto _ : state) {
    kernels::LayerNormRows(x.data(), gamma.data(), beta.data(), y.data(),
                           mu.data(), is.data(), n, d, 1e-5f);
    benchmark::DoNotOptimize(y.data());
  }
}

void BM_LayerNormRowsScalar(benchmark::State& state) {
  RunLayerNormRows(state, 0);
}
BENCHMARK(BM_LayerNormRowsScalar) STISAN_KERNEL_SHAPES;

void BM_LayerNormRowsSimd(benchmark::State& state) {
  RunLayerNormRows(state, 1);
}
BENCHMARK(BM_LayerNormRowsSimd) STISAN_KERNEL_SHAPES;

// The dynamic int8 path exactly as the MatMul hook runs it per call:
// quantize the activation rows, int8 dot against the pre-transposed
// weight, dequantize with the per-row x per-channel scale product. The
// weight-side quantization is NOT in the loop — it happens once at
// QuantizedModel construction.
void BM_Int8GemmDynamic(benchmark::State& state) {
  const int64_t n = state.range(0), d = state.range(1);
  const auto a = RandomVec(static_cast<size_t>(n * d), 7);
  const auto w = RandomVec(static_cast<size_t>(d * d), 8);
  // Offline weight prep (transposed [cols, rows] + per-channel scales).
  std::vector<float> wt(static_cast<size_t>(d * d));
  for (int64_t i = 0; i < d; ++i)
    for (int64_t j = 0; j < d; ++j)
      wt[static_cast<size_t>(j * d + i)] = w[static_cast<size_t>(i * d + j)];
  std::vector<int8_t> wq(wt.size());
  std::vector<float> wscale(static_cast<size_t>(d));
  quant::QuantizeRowsSymmetric(wt.data(), wq.data(), wscale.data(), d, d);

  std::vector<int8_t> aq(a.size());
  std::vector<float> ascale(static_cast<size_t>(n));
  std::vector<float> c(static_cast<size_t>(n * d));
  for (auto _ : state) {
    quant::QuantizeRowsSymmetric(a.data(), aq.data(), ascale.data(), n, d);
    quant::Int8GemmDequant(aq.data(), ascale.data(), wq.data(), wscale.data(),
                           c.data(), n, d, d);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(2 * n * d * d), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Int8GemmDynamic) STISAN_KERNEL_SHAPES;

}  // namespace
}  // namespace stisan

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
#ifdef NDEBUG
  benchmark::AddCustomContext("stisan_build_type", "release");
#else
  benchmark::AddCustomContext("stisan_build_type", "debug");
#endif
  benchmark::AddCustomContext("stisan_simd_backend",
                              stisan::kernels::SimdBackendName());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
