// Microbenchmarks for the tensor/autograd substrate (google-benchmark).
//
// Emit machine-readable results with:
//   ./bench_micro_tensor --benchmark_format=json
//
// The *_Threads benchmarks take (size, threads) pairs; threads=0 means
// "hardware concurrency". Each run re-sizes the global kernel pool and
// reports the effective worker count in the "threads" counter, so serial vs
// threaded numbers can be compared from one binary.

#include <benchmark/benchmark.h>

#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace stisan {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatMulBackward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  Tensor a = Tensor::Randn({n, n}, rng, 1.0f, true);
  Tensor b = Tensor::Randn({n, n}, rng, 1.0f, true);
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    Tensor loss = ops::Sum(ops::MatMul(a, b));
    loss.Backward();
    benchmark::DoNotOptimize(a.grad_data());
  }
}
BENCHMARK(BM_MatMulBackward)->Arg(32)->Arg(64);

void BM_Softmax(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  Tensor a = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Softmax(a).data());
  }
}
BENCHMARK(BM_Softmax)->Arg(64)->Arg(256);

void BM_LayerNorm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(4);
  Tensor x = Tensor::Randn({n, 64}, rng);
  Tensor gamma = Tensor::Ones({64});
  Tensor beta = Tensor::Zeros({64});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::LayerNorm(x, gamma, beta).data());
  }
}
BENCHMARK(BM_LayerNorm)->Arg(32)->Arg(128);

void BM_EmbeddingLookup(benchmark::State& state) {
  Rng rng(5);
  Tensor w = Tensor::Randn({10000, 64}, rng);
  std::vector<int64_t> ids(256);
  for (auto& id : ids) id = static_cast<int64_t>(rng.UniformInt(uint64_t{10000}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::EmbeddingLookup(w, ids).data());
  }
}
BENCHMARK(BM_EmbeddingLookup);

void BM_BroadcastAdd(benchmark::State& state) {
  Rng rng(6);
  Tensor a = Tensor::Randn({128, 64}, rng);
  Tensor b = Tensor::Randn({64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize((a + b).data());
  }
}
BENCHMARK(BM_BroadcastAdd);

// ---- View vs copy shape ops -------------------------------------------------
// Reshape/Slice/TransposeLast2 are zero-copy views; pairing each with its
// materialised (Contiguous) counterpart shows what the refactor saves.

void BM_TransposeView(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(7);
  Tensor a = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::TransposeLast2(a).storage_data());
  }
}
BENCHMARK(BM_TransposeView)->Arg(64)->Arg(256);

void BM_TransposeMaterialize(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(7);
  Tensor a = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::TransposeLast2(a).Contiguous().data());
  }
}
BENCHMARK(BM_TransposeMaterialize)->Arg(64)->Arg(256);

void BM_SliceView(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(8);
  Tensor a = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Slice(a, 0, n / 4, 3 * n / 4).storage_data());
  }
}
BENCHMARK(BM_SliceView)->Arg(64)->Arg(256);

void BM_SliceInnerMaterialize(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(8);
  Tensor a = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops::Slice(a, 1, n / 4, 3 * n / 4).Contiguous().data());
  }
}
BENCHMARK(BM_SliceInnerMaterialize)->Arg(64)->Arg(256);

void BM_ReshapeView(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(9);
  Tensor a = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Reshape(a, {n * n}).storage_data());
  }
}
BENCHMARK(BM_ReshapeView)->Arg(64)->Arg(256);

// ---- Serial vs threaded kernels ---------------------------------------------

void BM_MatMulThreads(benchmark::State& state) {
  const int64_t n = state.range(0);
  kernels::SetNumThreads(state.range(1));
  Rng rng(10);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b).data());
  }
  state.counters["threads"] = static_cast<double>(kernels::NumThreads());
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  kernels::SetNumThreads(0);
}
BENCHMARK(BM_MatMulThreads)
    ->Args({128, 1})
    ->Args({128, 0})
    ->Args({256, 1})
    ->Args({256, 0});

void BM_SoftmaxThreads(benchmark::State& state) {
  const int64_t n = state.range(0);
  kernels::SetNumThreads(state.range(1));
  Rng rng(11);
  Tensor a = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Softmax(a).data());
  }
  state.counters["threads"] = static_cast<double>(kernels::NumThreads());
  kernels::SetNumThreads(0);
}
BENCHMARK(BM_SoftmaxThreads)->Args({256, 1})->Args({256, 0});

}  // namespace
}  // namespace stisan

BENCHMARK_MAIN();
