// Microbenchmarks for the tensor/autograd substrate (google-benchmark).

#include <benchmark/benchmark.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace stisan {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatMulBackward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  Tensor a = Tensor::Randn({n, n}, rng, 1.0f, true);
  Tensor b = Tensor::Randn({n, n}, rng, 1.0f, true);
  for (auto _ : state) {
    a.ZeroGrad();
    b.ZeroGrad();
    Tensor loss = ops::Sum(ops::MatMul(a, b));
    loss.Backward();
    benchmark::DoNotOptimize(a.grad_data());
  }
}
BENCHMARK(BM_MatMulBackward)->Arg(32)->Arg(64);

void BM_Softmax(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  Tensor a = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Softmax(a).data());
  }
}
BENCHMARK(BM_Softmax)->Arg(64)->Arg(256);

void BM_LayerNorm(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(4);
  Tensor x = Tensor::Randn({n, 64}, rng);
  Tensor gamma = Tensor::Ones({64});
  Tensor beta = Tensor::Zeros({64});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::LayerNorm(x, gamma, beta).data());
  }
}
BENCHMARK(BM_LayerNorm)->Arg(32)->Arg(128);

void BM_EmbeddingLookup(benchmark::State& state) {
  Rng rng(5);
  Tensor w = Tensor::Randn({10000, 64}, rng);
  std::vector<int64_t> ids(256);
  for (auto& id : ids) id = static_cast<int64_t>(rng.UniformInt(uint64_t{10000}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::EmbeddingLookup(w, ids).data());
  }
}
BENCHMARK(BM_EmbeddingLookup);

void BM_BroadcastAdd(benchmark::State& state) {
  Rng rng(6);
  Tensor a = Tensor::Randn({128, 64}, rng);
  Tensor b = Tensor::Randn({64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize((a + b).data());
  }
}
BENCHMARK(BM_BroadcastAdd);

}  // namespace
}  // namespace stisan

BENCHMARK_MAIN();
