// Microbenchmark of the evaluation pipeline: per-instance scoring cost of
// eval::Evaluate through the legacy per-instance Scorer path vs the batched
// BatchScorer path at batch sizes {1, 8, 32}. One kernel thread throughout,
// so the numbers isolate the batching win (fused padded forwards, fewer
// kernel dispatches) from thread-level parallelism.
//
// Emit machine-readable results with:
//   ./bench_micro_eval --benchmark_format=json
//
// Throughput appears as items_per_second (items = eval instances); per-
// instance CPU time is cpu_time / instances ("instances" counter).

#include <benchmark/benchmark.h>

#include <memory>

#include "core/stisan.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "tensor/kernels.h"

namespace stisan::bench {
namespace {

struct EvalFixture {
  data::Dataset dataset;
  data::Split split;
  std::unique_ptr<eval::CandidateGenerator> generator;
  std::unique_ptr<core::StisanModel> model;
};

EvalFixture& Fixture() {
  static EvalFixture* fx = [] {
    auto* f = new EvalFixture();
    f->dataset = data::GenerateSynthetic(data::GowallaLikeConfig(0.12));
    f->split = data::TrainTestSplit(f->dataset, {.max_seq_len = 16});
    if (f->split.test.size() > 64) f->split.test.resize(64);
    f->generator = std::make_unique<eval::CandidateGenerator>(f->dataset);
    core::StisanOptions options;
    options.poi_dim = 16;
    options.geo.dim = 16;
    options.geo.fourier_dim = 8;
    options.num_blocks = 2;
    f->model = std::make_unique<core::StisanModel>(f->dataset, options);
    return f;
  }();
  return *fx;
}

eval::EvalOptions Options(int64_t batch_size) {
  eval::EvalOptions options;
  options.num_negatives = 100;  // the paper protocol's candidate pool
  options.batch_size = batch_size;
  return options;
}

void Finish(benchmark::State& state) {
  const auto instances = static_cast<int64_t>(Fixture().split.test.size());
  state.SetItemsProcessed(state.iterations() * instances);
  state.counters["instances"] = static_cast<double>(instances);
}

/// Baseline: the pre-batching pipeline shape — one Score call per instance
/// through the legacy Scorer overload.
void BM_EvaluateSequential(benchmark::State& state) {
  auto& fx = Fixture();
  kernels::SetNumThreads(1);
  const eval::Scorer scorer = [&fx](const data::EvalInstance& instance,
                                    const std::vector<int64_t>& candidates) {
    return fx.model->Score(instance, candidates);
  };
  const auto options = Options(1);
  for (auto _ : state) {
    auto acc = eval::Evaluate(scorer, fx.split.test, *fx.generator, options);
    benchmark::DoNotOptimize(acc.count());
  }
  Finish(state);
}
BENCHMARK(BM_EvaluateSequential)->Unit(benchmark::kMillisecond);

/// The batched pipeline at batch size range(0). batch=1 measures pure
/// pipeline overhead; 8/32 measure the fused padded-batch forwards.
void BM_EvaluateBatched(benchmark::State& state) {
  auto& fx = Fixture();
  kernels::SetNumThreads(1);
  const auto options = Options(state.range(0));
  for (auto _ : state) {
    auto acc = eval::Evaluate(static_cast<eval::BatchScorer&>(*fx.model),
                              fx.split.test, *fx.generator, options);
    benchmark::DoNotOptimize(acc.count());
  }
  Finish(state);
}
BENCHMARK(BM_EvaluateBatched)->Arg(1)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stisan::bench

BENCHMARK_MAIN();
