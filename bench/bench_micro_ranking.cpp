// Microbenchmark of the two-stage full-catalog ranker (DESIGN.md §17):
// exact FullRankingEvaluate (O(P) scores per instance) head-to-head with
// PrunedRankingEvaluate (geo-pruned pool + re-rank) on a metro-scale
// synthetic catalog (MetroScaleConfig(1.0): ~1e5 POIs).
//
// Scorers:
//  - GeoPriorScorer: log-popularity plus distance decay from the user's
//    last check-in — cheap enough to afford the exact O(P) leg, and
//    geo-aligned the way a trained STiSAN-style model is, so the
//    stage-one recall it measures is representative.
//  - A small untrained core::StisanModel for the neural wall-clock of the
//    pruned path (the exact neural leg at P = 1e5 is minutes per
//    instance; its accuracy tradeoff is carried by TargetInPoolRate).
//
// Counters:
//  - recall_at_10: mean |top10(exact) cap top10(pruned)| / 10 against the
//    exact leg's tracked top-k under the same scorer (GeoPrior legs).
//  - target_in_pool: fraction of instances whose target survived stage
//    one (the pruning recall proxy; scorer-independent).
//  - pool_size: mean stage-one pool size.
//  - instances_per_s via SetItemsProcessed.
//
// The checked-in BENCH_ranking.json captures one JSON run:
//   ./bench/bench_micro_ranking --benchmark_format=json > BENCH_ranking.json

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/stisan.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/full_ranking.h"
#include "eval/pruned_ranking.h"
#include "geo/candidate_gen.h"

namespace stisan::bench {
namespace {

constexpr int64_t kInstances = 32;
constexpr int64_t kTopK = 10;

/// log-popularity + distance decay from the instance's last check-in.
/// Deterministic, O(1) per candidate, and spatially concentrated like the
/// real model's preferences, so stage-one recall numbers transfer.
class GeoPriorScorer : public eval::BatchScorer {
 public:
  explicit GeoPriorScorer(const data::Dataset& dataset)
      : dataset_(&dataset), log_pop_(dataset.poi_coords.size(), 0.0f) {
    std::vector<int64_t> counts(dataset.poi_coords.size(), 0);
    for (const auto& seq : dataset.user_seqs) {
      for (const auto& visit : seq) counts[static_cast<size_t>(visit.poi)]++;
    }
    for (size_t i = 0; i < counts.size(); ++i) {
      log_pop_[i] = std::log1p(static_cast<float>(counts[i]));
    }
  }

  std::vector<std::vector<float>> ScoreBatch(
      const std::vector<const data::EvalInstance*>& batch,
      const std::vector<std::vector<int64_t>>& candidates) override {
    std::vector<std::vector<float>> out(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const geo::GeoPoint last = dataset_->poi_location(batch[i]->poi.back());
      out[i].resize(candidates[i].size());
      for (size_t j = 0; j < candidates[i].size(); ++j) {
        const int64_t poi = candidates[i][j];
        const double d = geo::HaversineKm(last, dataset_->poi_location(poi));
        // Decay length matches MetroScaleConfig's distance_decay_km: the
        // prior a well-trained model on this data would converge to.
        out[i][j] =
            log_pop_[static_cast<size_t>(poi)] - static_cast<float>(d / 0.3);
      }
    }
    return out;
  }

 private:
  const data::Dataset* dataset_;
  std::vector<float> log_pop_;
};

struct RankingFixture {
  data::Dataset dataset;
  data::Split split;
  std::unique_ptr<GeoPriorScorer> prior;
  std::unique_ptr<geo::SpatialGridIndex> index;
  std::unique_ptr<core::StisanModel> model;
  // Exact leg's results under the prior scorer (computed once).
  std::vector<std::vector<int64_t>> exact_top_k;
};

RankingFixture& Fixture() {
  static RankingFixture* fx = [] {
    auto* f = new RankingFixture();
    f->dataset = data::GenerateSynthetic(data::MetroScaleConfig(1.0));
    f->split = data::TrainTestSplit(f->dataset, {.max_seq_len = 16});
    if (f->split.test.size() > kInstances) f->split.test.resize(kInstances);
    f->prior = std::make_unique<GeoPriorScorer>(f->dataset);
    f->index = std::make_unique<geo::SpatialGridIndex>(
        eval::BuildCatalogIndex(f->dataset));
    core::StisanOptions options;
    options.poi_dim = 16;
    options.geo.dim = 16;
    options.geo.fourier_dim = 8;
    options.num_blocks = 1;
    f->model = std::make_unique<core::StisanModel>(f->dataset, options);
    // One exact pass up front so the pruned legs can report recall@10
    // without timing the reference inside their own loop.
    eval::FullRankingOptions exact;
    exact.track_top_k = kTopK;
    exact.top_k_out = &f->exact_top_k;
    eval::FullRankingEvaluate(*f->prior, f->split.test, f->dataset, exact);
    return f;
  }();
  return *fx;
}

double RecallAt10(const std::vector<std::vector<int64_t>>& exact,
                  const std::vector<std::vector<int64_t>>& pruned) {
  double total = 0.0;
  for (size_t i = 0; i < exact.size(); ++i) {
    const std::unordered_set<int64_t> ref(exact[i].begin(), exact[i].end());
    int64_t hit = 0;
    for (int64_t poi : pruned[i]) hit += ref.contains(poi) ? 1 : 0;
    total += static_cast<double>(hit) /
             static_cast<double>(std::max<size_t>(exact[i].size(), 1));
  }
  return exact.empty() ? 0.0 : total / static_cast<double>(exact.size());
}

void BM_ExactRanking_GeoPrior(benchmark::State& state) {
  auto& fx = Fixture();
  eval::FullRankingOptions options;
  options.track_top_k = kTopK;
  std::vector<std::vector<int64_t>> top_k;
  options.top_k_out = &top_k;
  for (auto _ : state) {
    auto acc = eval::FullRankingEvaluate(*fx.prior, fx.split.test, fx.dataset,
                                         options);
    benchmark::DoNotOptimize(acc.ranks().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.split.test.size()));
  state.counters["catalog_pois"] =
      static_cast<double>(fx.dataset.num_pois());
  state.counters["recall_at_10"] = 1.0;  // the reference ranks itself
}
BENCHMARK(BM_ExactRanking_GeoPrior)->Unit(benchmark::kMillisecond);

void BM_PrunedRanking_GeoPrior(benchmark::State& state) {
  auto& fx = Fixture();
  geo::CandidatePoolOptions pool_options;
  pool_options.pool_size = state.range(0);
  geo::CandidateGenerator gen(*fx.index, pool_options);
  eval::PrunedRankingOptions options;
  options.track_top_k = kTopK;
  std::vector<std::vector<int64_t>> top_k;
  options.top_k_out = &top_k;
  double recall = 0.0, in_pool = 0.0, pool_size = 0.0;
  for (auto _ : state) {
    auto result = eval::PrunedRankingEvaluate(*fx.prior, fx.split.test,
                                              fx.dataset, gen, options);
    benchmark::DoNotOptimize(result.metrics.ranks().data());
    recall = RecallAt10(fx.exact_top_k, top_k);
    in_pool = result.TargetInPoolRate();
    pool_size = result.mean_pool_size;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.split.test.size()));
  state.counters["catalog_pois"] =
      static_cast<double>(fx.dataset.num_pois());
  state.counters["recall_at_10"] = recall;
  state.counters["target_in_pool"] = in_pool;
  state.counters["pool_size"] = pool_size;
}
BENCHMARK(BM_PrunedRanking_GeoPrior)
    ->Arg(100)
    ->Arg(500)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

// Neural stage two over the pruned pool: the honest serving-shaped number.
// No exact neural leg — at P ~ 1e5 it is ~200x this cost per instance;
// target_in_pool carries the accuracy proxy instead.
void BM_PrunedRanking_Stisan(benchmark::State& state) {
  auto& fx = Fixture();
  geo::CandidatePoolOptions pool_options;
  pool_options.pool_size = state.range(0);
  geo::CandidateGenerator gen(*fx.index, pool_options);
  eval::PrunedRankingOptions options;
  options.batch_size = 8;
  double in_pool = 0.0;
  for (auto _ : state) {
    auto result = eval::PrunedRankingEvaluate(*fx.model, fx.split.test,
                                              fx.dataset, gen, options);
    benchmark::DoNotOptimize(result.metrics.ranks().data());
    in_pool = result.TargetInPoolRate();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(fx.split.test.size()));
  state.counters["catalog_pois"] =
      static_cast<double>(fx.dataset.num_pois());
  state.counters["target_in_pool"] = in_pool;
}
BENCHMARK(BM_PrunedRanking_Stisan)->Arg(500)->Unit(benchmark::kMillisecond);

// Stage one alone: candidate generation throughput (queries/s) at metro
// scale, serial vs thread pool.
void BM_CandidateGeneration(benchmark::State& state) {
  auto& fx = Fixture();
  geo::CandidatePoolOptions pool_options;
  pool_options.pool_size = 500;
  geo::CandidateGenerator gen(*fx.index, pool_options);
  std::vector<geo::GeoPoint> queries;
  for (const auto& inst : fx.split.test) {
    queries.push_back(fx.dataset.poi_location(inst.poi.back()));
  }
  const geo::CandidateGenerator::BatchAcceptFn accept =
      [](int64_t, int64_t) { return true; };
  std::vector<std::vector<int64_t>> pools;
  for (auto _ : state) {
    gen.GenerateBatch(queries, accept, nullptr, &pools);
    benchmark::DoNotOptimize(pools.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_CandidateGeneration)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stisan::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
#ifdef NDEBUG
  benchmark::AddCustomContext("stisan_build_type", "release");
#else
  benchmark::AddCustomContext("stisan_build_type", "debug");
#endif
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
