// Table II reproduction: statistics of the four datasets after
// preprocessing (cold users < 20 visits and cold POIs < 10 interactions
// removed).
//
// Paper (Table II):
//   dataset     #user    #POI   #check-in  sparsity  avg.seq
//   Gowalla     31,708  131,329  2,963,373   99.93%     53.0
//   Brightkite   5,247   48,181  1,699,579   99.33%    146.0
//   Weeplaces    1,362   18,364    650,690   97.40%    325.5
//   Changchun  344,258    2,135 21,471,724   97.08%     43.0
//
// The synthetic presets reproduce the *relative* shape at CPU scale:
// Weeplaces-like has by far the longest sequences, Changchun-like the
// smallest POI set and the largest user base, Gowalla-like the sparsest
// interaction matrix.

#include <cstdio>

#include "bench_common.h"
#include "data/preprocess.h"

using namespace stisan;

int main() {
  const double scale = bench::BenchScale(1.0);
  std::printf("Table II: dataset statistics (synthetic, scale=%.2f)\n\n",
              scale);
  std::printf("%-18s %8s %8s %10s %9s %8s\n", "dataset", "#user", "#POI",
              "#check-in", "sparsity", "avg.seq");
  for (const auto& cfg : bench::PaperDatasetConfigs(scale)) {
    data::Dataset raw = data::GenerateSynthetic(cfg);
    data::Dataset filtered = data::FilterCold(
        raw, {.min_user_checkins = 20, .min_poi_checkins = 10});
    auto s = filtered.Stats();
    std::printf("%-18s %8lld %8lld %10lld %8.2f%% %8.1f\n", cfg.name.c_str(),
                static_cast<long long>(s.num_users),
                static_cast<long long>(s.num_pois),
                static_cast<long long>(s.num_checkins), s.sparsity * 100.0,
                s.avg_seq_length);
  }
  std::printf(
      "\npaper:            31,708 / 5,247 / 1,362 / 344,258 users;\n"
      "                  seq 53.0 / 146.0 / 325.5 / 43.0;\n"
      "                  sparsity 99.93 / 99.33 / 97.40 / 97.08 %%\n");
  return 0;
}
