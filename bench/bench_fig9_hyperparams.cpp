// Fig. 9 reproduction: sensitivity of STiSAN to the relation-matrix
// clipping thresholds k_t (days) and k_d (km), reporting NDCG@5.
//
// Paper sweep: (k_t, k_d) in {(0,0), (5,5), (10,10), (20,15)}. At (0,0)
// the relation matrix is all-zero — after softmax scaling it adds a uniform
// term, disabling IAAB — giving the worst accuracy on all datasets; beyond
// a dataset-specific sweet spot the curves flatten.

#include "bench_common.h"

using namespace stisan;

int main() {
  const double scale = bench::BenchScale(0.25);
  std::printf("Fig. 9: k_t / k_d sensitivity, NDCG@5 (scale=%.2f)\n", scale);
  std::printf("paper: (0,0) is the worst everywhere; performance peaks at a\n"
              "dataset-specific setting then stays roughly stable.\n\n");

  struct Setting {
    double kt_days;
    double kd_km;
  };
  const std::vector<Setting> settings = {
      {0, 0}, {5, 5}, {10, 10}, {20, 15}};

  const auto configs = bench::FastMode()
                           ? std::vector<data::SyntheticConfig>{
                                 data::GowallaLikeConfig(scale)}
                           : bench::PaperDatasetConfigs(scale);

  std::printf("%-18s", "dataset");
  for (const auto& s : settings) {
    std::printf("   kt=%-2.0f kd=%-2.0f", s.kt_days, s.kd_km);
  }
  std::printf("\n");

  for (const auto& cfg : configs) {
    auto prep = bench::Prepare(cfg);
    std::printf("%-18s", cfg.name.c_str());
    for (const auto& s : settings) {
      auto opts = bench::BenchStisanOptions(
          bench::DatasetTemperature(cfg.name));
      opts.relation.kt_days = s.kt_days;
      opts.relation.kd_km = s.kd_km;
      core::StisanModel model(prep.dataset, opts);
      auto acc = bench::FitAndEvaluate(model, prep);
      std::printf("   %11.4f", acc.Ndcg(5));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
