// Fig. 2 reproduction: distribution of strong-spatial-correlation POIs
// (< 10 km from the target POI) across sequence positions.
//
// The paper's observation: POIs spatially close to the user's final
// (target) POI appear not only among the most recent visits but throughout
// the whole history — which motivates IAAB's relation bias over the entire
// sequence rather than a local attention window.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "geo/geo.h"

using namespace stisan;

int main() {
  const double scale = bench::BenchScale(1.0);
  const double kStrongKm = 10.0;  // paper's threshold [32]
  const int kBuckets = 8;

  std::printf("Fig. 2: positions of POIs within %.0f km of the target\n",
              kStrongKm);
  std::printf("(counts bucketed over relative history position; bucket 8 = "
              "most recent)\n\n");

  for (const auto& cfg : bench::PaperDatasetConfigs(scale)) {
    data::Dataset ds = data::GenerateSynthetic(cfg);
    std::vector<int64_t> buckets(kBuckets, 0);
    int64_t total_strong = 0;
    for (const auto& seq : ds.user_seqs) {
      if (seq.size() < 8) continue;
      const auto& target_loc = ds.poi_location(seq.back().poi);
      const size_t hist = seq.size() - 1;
      for (size_t i = 0; i < hist; ++i) {
        if (geo::HaversineKm(ds.poi_location(seq[i].poi), target_loc) <
            kStrongKm) {
          const int b = static_cast<int>(i * kBuckets / hist);
          buckets[static_cast<size_t>(std::min(b, kBuckets - 1))]++;
          ++total_strong;
        }
      }
    }
    std::printf("%-18s total=%lld\n  ", cfg.name.c_str(),
                static_cast<long long>(total_strong));
    for (int b = 0; b < kBuckets; ++b) {
      std::printf("%7lld", static_cast<long long>(buckets[size_t(b)]));
    }
    std::printf("\n  ");
    // Normalised shares, to show the distribution is NOT confined to the
    // most recent bucket (the paper's point).
    for (int b = 0; b < kBuckets; ++b) {
      std::printf("%6.1f%%", total_strong > 0
                                 ? 100.0 * double(buckets[size_t(b)]) /
                                       double(total_strong)
                                 : 0.0);
    }
    std::printf("\n\n");
  }
  std::printf("paper: strong-correlation POIs spread across ALL positions\n"
              "(e.g. positions 640-896 in Gowalla, whole sequence in\n"
              "Brightkite/Weeplaces) — expect every bucket well above 0%%.\n");
  return 0;
}
