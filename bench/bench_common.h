// Shared helpers for the table/figure reproduction benches.
//
// Every bench prints (a) the paper's reported numbers for context and
// (b) the numbers measured on the scaled synthetic datasets. Absolute
// values differ by design (see DESIGN.md §2); the comparisons of interest
// are orderings and relative gaps.
//
// Env knobs:
//   STISAN_BENCH_FAST=1  - tiny budgets (CI smoke)
//   STISAN_BENCH_SCALE   - dataset scale multiplier (default 0.4)

#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/stisan.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/recommender.h"
#include "util/stopwatch.h"

namespace stisan::bench {

inline bool FastMode() {
  const char* v = std::getenv("STISAN_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

inline double BenchScale(double fallback = 0.4) {
  const char* v = std::getenv("STISAN_BENCH_SCALE");
  if (v == nullptr) return FastMode() ? 0.12 : fallback;
  return std::atof(v);
}

/// The four scaled datasets mirroring the paper's Table II.
inline std::vector<data::SyntheticConfig> PaperDatasetConfigs(double scale) {
  return {data::GowallaLikeConfig(scale), data::BrightkiteLikeConfig(scale),
          data::WeeplacesLikeConfig(scale), data::ChangchunLikeConfig(scale)};
}

/// A prepared dataset: generated, split, with a candidate generator.
struct PreparedDataset {
  data::Dataset dataset;
  data::Split split;
  std::unique_ptr<eval::CandidateGenerator> candidates;
};

inline PreparedDataset Prepare(const data::SyntheticConfig& config,
                               int64_t max_seq_len = 32) {
  PreparedDataset out;
  out.dataset = data::GenerateSynthetic(config);
  out.split = data::TrainTestSplit(out.dataset, {.max_seq_len = max_seq_len});
  out.candidates = std::make_unique<eval::CandidateGenerator>(out.dataset);
  return out;
}

/// Default training config used across benches (verbose off).
/// `temperature` mirrors the paper's per-dataset T (scaled down).
inline train::TrainConfig BenchTrainConfig(float temperature = 1.0f) {
  train::TrainConfig cfg;
  cfg.epochs = FastMode() ? 2 : 8;
  cfg.num_negatives = 15;  // paper: L = 15
  cfg.knn_neighborhood = 100;
  cfg.temperature = temperature;
  // Single-core wall-clock budget: cap windows per epoch on the denser
  // datasets (the sweep still covers every user's most recent windows).
  cfg.max_train_windows = FastMode() ? 30 : 200;
  return cfg;
}

/// Tuned CPU-scale STiSAN configuration (see EXPERIMENTS.md for the
/// calibration sweep).
inline core::StisanOptions BenchStisanOptions(float temperature = 1.0f) {
  core::StisanOptions opts;
  opts.poi_dim = 16;
  opts.geo.dim = 16;
  opts.geo.fourier_dim = 8;
  opts.geo.scales_km = {0.25, 0.8, 2.5, 8.0};
  opts.num_blocks = 2;
  opts.dropout = 0.2f;
  opts.train = BenchTrainConfig(temperature);
  return opts;
}

/// Per-dataset temperature, mirroring the paper's {1, 100, 100, 500}
/// pattern (rescaled for the smaller negative pools).
inline float DatasetTemperature(const std::string& dataset_name) {
  return dataset_name.find("gowalla") != std::string::npos ? 1.0f : 10.0f;
}

/// Fits a model and evaluates it with the paper protocol.
inline eval::MetricAccumulator FitAndEvaluate(
    models::SequentialRecommender& model, const PreparedDataset& prep,
    double* train_seconds = nullptr) {
  Stopwatch watch;
  model.Fit(prep.dataset, prep.split.train);
  if (train_seconds != nullptr) *train_seconds = watch.ElapsedSeconds();
  // Models are BatchScorers: the batched pipeline scores padded batches in
  // one forward and is bit-identical to per-instance scoring.
  return eval::Evaluate(static_cast<eval::BatchScorer&>(model),
                        prep.split.test, *prep.candidates, {});
}

/// Prints one metric row: name, HR@5, NDCG@5, HR@10, NDCG@10.
inline void PrintMetricsRow(const std::string& name,
                            const eval::MetricAccumulator& acc) {
  std::printf("  %-14s %8.4f %8.4f %8.4f %8.4f\n", name.c_str(),
              acc.HitRate(5), acc.Ndcg(5), acc.HitRate(10), acc.Ndcg(10));
  std::fflush(stdout);
}

inline void PrintMetricsHeader() {
  std::printf("  %-14s %8s %8s %8s %8s\n", "model", "HR@5", "NDCG@5", "HR@10",
              "NDCG@10");
}

}  // namespace stisan::bench
