// Table III reproduction: overall recommendation performance of STiSAN and
// the twelve baselines on the four (synthetic) datasets.
//
// Paper headline (HR@5): STiSAN best everywhere; GeoSAN/STAN strongest
// baselines; SASRec/TiSASRec/Bert4Rec mid-field; GRU4Rec/Caser/PRME-G
// lower; STGN/FPMC-LR weak; BPR/POP weakest. Average improvement of STiSAN
// over the best baseline: 13.01%.
//
// Expected shape here (scaled synthetic, CPU budgets): the same ordering
// of model *families* — spatio-temporal attention > geo attention >
// plain attention > RNN/CNN/metric > popularity/MF.
//
// Usage: bench_table3_overall [--dataset <name-substring>]
// Env: STISAN_BENCH_FAST=1, STISAN_BENCH_SCALE=<f>

#include <cstring>
#include <functional>
#include <memory>

#include "bench_common.h"
#include "models/caser.h"
#include "models/geosan.h"
#include "models/gru4rec.h"
#include "models/san_models.h"
#include "models/shallow.h"
#include "models/stan.h"
#include "models/stgn.h"

using namespace stisan;

int main(int argc, char** argv) {
  const char* only = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--dataset") == 0) only = argv[i + 1];
  }
  const double scale = bench::BenchScale(0.3);
  const bool fast = bench::FastMode();

  std::printf("Table III: overall performance (synthetic, scale=%.2f)\n",
              scale);
  std::printf("paper (Gowalla HR@5): POP .015 BPR .014 FPMC-LR .126 "
              "PRME-G .341 GRU4Rec .326\n  Caser .233 STGN .166 SASRec .324 "
              "Bert4Rec .332 TiSASRec .333 GeoSAN .415 STAN .437 "
              "STiSAN .462\n\n");

  for (const auto& cfg : bench::PaperDatasetConfigs(scale)) {
    if (only != nullptr && cfg.name.find(only) == std::string::npos) continue;
    auto prep = bench::Prepare(cfg);
    const float temperature = bench::DatasetTemperature(cfg.name);
    std::printf("== %s: %s ==\n", cfg.name.c_str(),
                prep.dataset.Stats().ToString().c_str());
    bench::PrintMetricsHeader();

    train::TrainConfig tc = bench::BenchTrainConfig(temperature);
    // The headline table gets a larger budget than the figure benches.
    tc.epochs = fast ? 2 : 14;
    models::NeuralOptions neural;
    neural.dim = 32;
    neural.train = tc;
    models::SanOptions san;
    san.base = neural;
    san.num_blocks = 2;
    core::StisanOptions st = bench::BenchStisanOptions(temperature);
    st.train.epochs = tc.epochs;

    using Factory = std::pair<
        std::string,
        std::function<std::unique_ptr<models::SequentialRecommender>()>>;
    std::vector<Factory> factories;
    factories.emplace_back("POP", [] {
      return std::make_unique<models::PopModel>();
    });
    factories.emplace_back("BPR", [] {
      return std::make_unique<models::BprMfModel>();
    });
    factories.emplace_back("FPMC-LR", [] {
      return std::make_unique<models::FpmcLrModel>();
    });
    factories.emplace_back("PRME-G", [] {
      return std::make_unique<models::PrmeGModel>();
    });
    factories.emplace_back("GRU4Rec", [&] {
      return std::make_unique<models::Gru4RecModel>(prep.dataset, neural);
    });
    factories.emplace_back("Caser", [&] {
      models::CaserOptions co;
      co.base = neural;
      co.base.train.max_train_windows = fast ? 20 : 200;
      return std::make_unique<models::CaserModel>(prep.dataset, co);
    });
    factories.emplace_back("STGN", [&] {
      return std::make_unique<models::StgnModel>(prep.dataset, neural);
    });
    factories.emplace_back("SASRec", [&] {
      return std::make_unique<models::SasRecModel>(prep.dataset, san);
    });
    factories.emplace_back("Bert4Rec", [&] {
      return std::make_unique<models::Bert4RecModel>(prep.dataset, san);
    });
    factories.emplace_back("TiSASRec", [&] {
      return std::make_unique<models::TiSasRecModel>(prep.dataset, san);
    });
    factories.emplace_back("GeoSAN", [&] {
      return std::make_unique<models::GeoSanModel>(prep.dataset, st);
    });
    factories.emplace_back("STAN", [&] {
      models::StanOptions so;
      so.base = neural;
      return std::make_unique<models::StanModel>(prep.dataset, so);
    });
    factories.emplace_back("STiSAN", [&] {
      return std::make_unique<core::StisanModel>(prep.dataset, st);
    });

    double best_baseline_hr5 = 0.0;
    double stisan_hr5 = 0.0;
    for (auto& [label, make] : factories) {
      auto model = make();
      auto acc = bench::FitAndEvaluate(*model, prep);
      bench::PrintMetricsRow(label, acc);
      if (label == "STiSAN") {
        stisan_hr5 = acc.HitRate(5);
      } else {
        best_baseline_hr5 = std::max(best_baseline_hr5, acc.HitRate(5));
      }
    }
    if (best_baseline_hr5 > 0) {
      std::printf("  STiSAN vs best baseline (HR@5): %+.1f%%\n\n",
                  100.0 * (stisan_hr5 / best_baseline_hr5 - 1.0));
    }
  }
  return 0;
}
