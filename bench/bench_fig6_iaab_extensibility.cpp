// Fig. 6 reproduction: extensibility of IAAB — replace the self-attention
// of a vanilla SAN with IAAB and compare across maximum sequence lengths.
//
// Paper: plain SA degrades sharply as the max sequence length grows from 64
// to 128 (insufficient attention to spatially-relevant local POIs); IAAB
// holds up and even improves. Expect the SA-vs-IAAB gap to widen with n.

#include "bench_common.h"
#include "models/san_models.h"

using namespace stisan;

int main() {
  const double scale = bench::BenchScale(0.3);
  const std::vector<int64_t> lengths =
      bench::FastMode() ? std::vector<int64_t>{16, 32}
                        : std::vector<int64_t>{16, 32, 64};
  std::printf("Fig. 6: IAAB extensibility across sequence lengths "
              "(scale=%.2f)\n", scale);
  std::printf("paper: SA drops sharply at long n; SA+IAAB holds up\n\n");

  std::vector<data::SyntheticConfig> configs = {
      data::GowallaLikeConfig(scale), data::BrightkiteLikeConfig(scale),
      data::WeeplacesLikeConfig(scale)};

  for (const auto& cfg : configs) {
    std::printf("== %s ==\n", cfg.name.c_str());
    std::printf("  %6s %10s %10s\n", "n", "SA HR@10", "IAAB HR@10");
    for (int64_t n : lengths) {
      auto prep = bench::Prepare(cfg, n);
      models::SanOptions san;
      san.base.dim = 32;
      san.base.train =
          bench::BenchTrainConfig(bench::DatasetTemperature(cfg.name));
      // Longer windows cost O(n^2): cap per-epoch windows for parity.
      san.base.train.max_train_windows = bench::FastMode() ? 20 : 250;
      san.num_blocks = 4;  // the paper uses a 4-layer SAN here
      san.max_seq_len = n + 4;

      models::SasRecModel sa(prep.dataset, san);
      auto acc_sa = bench::FitAndEvaluate(sa, prep);

      models::SasRecExtensions ext;
      ext.relation = core::RelationOptions{};
      models::SasRecModel iaab(prep.dataset, san, ext, "SAN+IAAB");
      auto acc_iaab = bench::FitAndEvaluate(iaab, prep);

      std::printf("  %6lld %10.4f %10.4f\n", static_cast<long long>(n),
                  acc_sa.HitRate(10), acc_iaab.HitRate(10));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
