// Table IV reproduction: ablation study of STiSAN's components on
// Gowalla/Brightkite/Weeplaces-like data.
//
// Paper variants and their Gowalla NDCG@5:
//   Original .3721 | -GE .3269 | -TAPE .3573 | -IAAB .3592 | -SA .3172 |
//   -TAAD .3780 (TAAD helps only on some datasets)
//
// Expected shape: Original near the top; removing GE hurts most; removing
// TAPE or IAAB hurts moderately; SA-free (relation-only) stays surprisingly
// competitive; TAAD is dataset-dependent.

#include "bench_common.h"

using namespace stisan;

int main() {
  const double scale = bench::BenchScale(0.3);
  std::printf("Table IV: ablation study (synthetic, scale=%.2f)\n\n", scale);

  std::vector<data::SyntheticConfig> configs = {
      data::GowallaLikeConfig(scale), data::BrightkiteLikeConfig(scale),
      data::WeeplacesLikeConfig(scale)};

  struct Variant {
    const char* label;
    std::function<void(core::StisanOptions&)> mutate;
  };
  const std::vector<Variant> variants = {
      {"Original", [](core::StisanOptions&) {}},
      {"I.-GE", [](core::StisanOptions& o) { o.use_geo_encoder = false; }},
      {"II.-TAPE", [](core::StisanOptions& o) { o.use_tape = false; }},
      {"III.-IAAB",
       [](core::StisanOptions& o) {
         o.attention_mode = core::AttentionMode::kVanilla;
       }},
      {"IV.-SA",
       [](core::StisanOptions& o) {
         o.attention_mode = core::AttentionMode::kRelationOnly;
       }},
      {"V.-TAAD", [](core::StisanOptions& o) { o.use_taad = false; }},
  };

  // The component effects are small (the paper's own deltas are 1.5-4%),
  // so each variant is averaged over training seeds.
  const int rounds = bench::FastMode() ? 1 : 2;
  for (const auto& cfg : configs) {
    auto prep = bench::Prepare(cfg);
    std::printf("== %s (%d rounds) ==\n", cfg.name.c_str(), rounds);
    bench::PrintMetricsHeader();
    for (const auto& variant : variants) {
      double hr5 = 0, nd5 = 0, hr10 = 0, nd10 = 0;
      for (int r = 0; r < rounds; ++r) {
        core::StisanOptions opts =
            bench::BenchStisanOptions(bench::DatasetTemperature(cfg.name));
        opts.train.epochs = bench::FastMode() ? 2 : 14;  // headline budget
        opts.train.seed = 7 + static_cast<uint64_t>(r);
        variant.mutate(opts);
        core::StisanModel model(prep.dataset, opts);
        auto acc = bench::FitAndEvaluate(model, prep);
        hr5 += acc.HitRate(5);
        nd5 += acc.Ndcg(5);
        hr10 += acc.HitRate(10);
        nd10 += acc.Ndcg(10);
      }
      std::printf("  %-14s %8.4f %8.4f %8.4f %8.4f\n", variant.label,
                  hr5 / rounds, nd5 / rounds, hr10 / rounds, nd10 / rounds);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
