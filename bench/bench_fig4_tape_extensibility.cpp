// Fig. 4 reproduction: extensibility of TAPE — replace the positional
// encoding of a vanilla self-attention network (SASRec) with TAPE and
// compare HR@10 on all four datasets.
//
// Paper: SAN+TAPE improves HR@10 by 5.36% on average over SAN+PE.

#include "bench_common.h"
#include "models/san_models.h"

using namespace stisan;

int main() {
  const double scale = bench::BenchScale(0.3);
  std::printf("Fig. 4: TAPE extensibility on a vanilla SAN (scale=%.2f)\n",
              scale);
  std::printf("paper: +5.36%% HR@10 on average from PE -> TAPE\n\n");
  std::printf("%-18s %10s %10s %8s\n", "dataset", "SAN+PE", "SAN+TAPE",
              "delta");

  double sum_rel = 0.0;
  int count = 0;
  for (const auto& cfg : bench::PaperDatasetConfigs(scale)) {
    auto prep = bench::Prepare(cfg);
    models::SanOptions san;
    san.base.dim = 32;
    san.base.train =
        bench::BenchTrainConfig(bench::DatasetTemperature(cfg.name));
    san.num_blocks = 2;

    models::SasRecModel pe(prep.dataset, san);
    auto acc_pe = bench::FitAndEvaluate(pe, prep);

    models::SasRecExtensions ext;
    ext.use_tape = true;
    models::SasRecModel tape(prep.dataset, san, ext, "SAN+TAPE");
    auto acc_tape = bench::FitAndEvaluate(tape, prep);

    const double rel = acc_pe.HitRate(10) > 0
                           ? 100.0 * (acc_tape.HitRate(10) /
                                          acc_pe.HitRate(10) -
                                      1.0)
                           : 0.0;
    sum_rel += rel;
    ++count;
    std::printf("%-18s %10.4f %10.4f %+7.1f%%\n", cfg.name.c_str(),
                acc_pe.HitRate(10), acc_tape.HitRate(10), rel);
    std::fflush(stdout);
  }
  std::printf("\naverage HR@10 change: %+.1f%% (paper: +5.36%%)\n",
              count > 0 ? sum_rel / count : 0.0);
  return 0;
}
