// Fig. 5 reproduction: interpretability of TAPE.
//
// The paper picks one user (history length 64), plots the time intervals
// between successive visits, and compares the average attention heat-maps
// of SAN+PE vs SAN+TAPE. The signature: with TAPE, successive POIs with a
// SMALL time interval get MORE similar attention (stronger sub-diagonal),
// and large intervals weaken it.
//
// This bench prints the intervals, both sub-diagonals, and the correlation
// between interval size and attention change — expect a clear negative
// relation for TAPE and none for PE.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "core/tape.h"
#include "nn/layers.h"

using namespace stisan;

namespace {

// Pearson correlation.
double Correlation(const std::vector<double>& x,
                   const std::vector<double>& y) {
  const size_t n = x.size();
  if (n < 2) return 0.0;
  double mx = 0, my = 0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= double(n);
  my /= double(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0 || syy <= 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

// Spearman rank correlation (robust to the heavy-tailed interval
// distribution).
double SpearmanCorrelation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  auto ranks = [](const std::vector<double>& v) {
    std::vector<size_t> order(v.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&v](size_t a, size_t b) { return v[a] < v[b]; });
    std::vector<double> r(v.size());
    for (size_t i = 0; i < order.size(); ++i) r[order[i]] = double(i);
    return r;
  };
  return Correlation(ranks(x), ranks(y));
}

}  // namespace

int main() {
  const double scale = bench::BenchScale(0.3);
  auto cfg = data::WeeplacesLikeConfig(scale);  // paper uses Weeplaces
  auto prep = bench::Prepare(cfg, /*max_seq_len=*/32);
  std::printf("Fig. 5: TAPE interpretability (%s)\n\n", cfg.name.c_str());

  const float temperature = bench::DatasetTemperature(cfg.name);
  auto pe_opts = bench::BenchStisanOptions(temperature);
  pe_opts.use_tape = false;
  pe_opts.attention_mode = core::AttentionMode::kVanilla;
  auto tape_opts = bench::BenchStisanOptions(temperature);
  tape_opts.attention_mode = core::AttentionMode::kVanilla;  // isolate TAPE

  core::StisanModel pe_model(prep.dataset, pe_opts);
  core::StisanModel tape_model(prep.dataset, tape_opts);
  pe_model.Fit(prep.dataset, prep.split.train);
  tape_model.Fit(prep.dataset, prep.split.train);

  // Pick a user with a full-length history.
  const data::EvalInstance* inst = &prep.split.test.front();
  for (const auto& candidate : prep.split.test) {
    if (candidate.first_real == 0) {
      inst = &candidate;
      break;
    }
  }
  const int64_t n = static_cast<int64_t>(inst->poi.size());

  // (a) Time intervals between successive visits.
  std::printf("(a) time intervals between successive visits (hours):\n  ");
  std::vector<double> intervals;
  for (int64_t i = inst->first_real + 1; i < n; ++i) {
    const double h =
        (inst->t[size_t(i)] - inst->t[size_t(i - 1)]) / 3600.0;
    intervals.push_back(h);
    std::printf("%.1f ", h);
  }
  std::printf("\n\n");

  // (b)/(c) sub-diagonals of the average attention maps: attention of step
  // i on its immediate predecessor, normalised by the row mean so that the
  // mechanical 1/row-length decay of softmax rows does not masquerade as an
  // interval effect.
  Tensor map_pe =
      pe_model.AverageAttentionMap(inst->poi, inst->t, inst->first_real);
  Tensor map_tape =
      tape_model.AverageAttentionMap(inst->poi, inst->t, inst->first_real);
  auto normalised_prev = [&](const Tensor& map, int64_t i) {
    const int64_t visible = i - inst->first_real + 1;
    double row_mean = 0;
    for (int64_t j = inst->first_real; j <= i; ++j) row_mean += map.at({i, j});
    row_mean /= double(visible);
    return map.at({i, i - 1}) / std::max(1e-9, row_mean);
  };
  std::vector<double> sub_pe, sub_tape;
  for (int64_t i = inst->first_real + 1; i < n; ++i) {
    sub_pe.push_back(normalised_prev(map_pe, i));
    sub_tape.push_back(normalised_prev(map_tape, i));
  }
  std::printf("(b) SAN+PE   attention on previous step (row-normalised):\n  ");
  for (double v : sub_pe) std::printf("%.3f ", v);
  std::printf("\n(c) SAN+TAPE attention on previous step (row-normalised):\n  ");
  for (double v : sub_tape) std::printf("%.3f ", v);

  std::printf("\n\nsingle-user rank correlation (interval vs attention):\n"
              "  SAN+PE   %+0.3f\n  SAN+TAPE %+0.3f\n",
              SpearmanCorrelation(intervals, sub_pe),
              SpearmanCorrelation(intervals, sub_tape));

  // Aggregate over many users for a stable estimate (single-user heat-maps
  // are qualitative; heavy-tailed overnight gaps dominate Pearson).
  double sum_pe = 0, sum_tape = 0;
  int64_t users = 0;
  for (const auto& u : prep.split.test) {
    const int64_t un = static_cast<int64_t>(u.poi.size());
    if (un - u.first_real < 8) continue;
    Tensor mp = pe_model.AverageAttentionMap(u.poi, u.t, u.first_real);
    Tensor mt = tape_model.AverageAttentionMap(u.poi, u.t, u.first_real);
    std::vector<double> iv, ape, atape;
    for (int64_t i = u.first_real + 1; i < un; ++i) {
      iv.push_back(u.t[size_t(i)] - u.t[size_t(i - 1)]);
      const int64_t visible = i - u.first_real + 1;
      auto norm_prev = [&](const Tensor& map) {
        double row_mean = 0;
        for (int64_t j = u.first_real; j <= i; ++j) row_mean += map.at({i, j});
        row_mean /= double(visible);
        return map.at({i, i - 1}) / std::max(1e-9, row_mean);
      };
      ape.push_back(norm_prev(mp));
      atape.push_back(norm_prev(mt));
    }
    sum_pe += SpearmanCorrelation(iv, ape);
    sum_tape += SpearmanCorrelation(iv, atape);
    ++users;
    if (users >= 40) break;
  }
  std::printf(
      "\nmean rank correlation over %lld users (trained attention):\n"
      "  SAN+PE   %+0.3f\n  SAN+TAPE %+0.3f\n",
      static_cast<long long>(users), sum_pe / std::max<int64_t>(1, users),
      sum_tape / std::max<int64_t>(1, users));

  // (d) The mechanism itself, measured at the encoding level: the inner
  // product between successive positional encodings. Vanilla PE is a
  // constant function of the fixed position difference 1; TAPE stretches
  // the difference by dt/mean(dt), so the similarity decreases as the
  // interval grows. This is the property the attention mechanism can
  // exploit to distinguish rhythms (the paper's "Why TAPE?" argument).
  const int64_t d = 32;
  double corr_sum = 0;
  int64_t corr_users = 0;
  for (const auto& u : prep.split.test) {
    const int64_t un = static_cast<int64_t>(u.poi.size());
    if (un - u.first_real < 8) continue;
    auto positions = core::TimeAwarePositions(u.t, u.first_real);
    Tensor enc = nn::SinusoidalEncoding(positions, d);
    std::vector<double> iv, sim;
    for (int64_t i = u.first_real + 1; i < un; ++i) {
      iv.push_back(u.t[size_t(i)] - u.t[size_t(i - 1)]);
      double dot = 0;
      for (int64_t c = 0; c < d; ++c) dot += enc.at({i, c}) * enc.at({i - 1, c});
      sim.push_back(dot);
    }
    corr_sum += SpearmanCorrelation(iv, sim);
    ++corr_users;
    if (corr_users >= 40) break;
  }
  std::printf(
      "\n(d) encoding-level mechanism over %lld users:\n"
      "  rank corr(interval, <TAPE_i, TAPE_(i-1)>) = %+0.3f\n"
      "  (vanilla PE: exactly 0 — successive encodings are equidistant)\n"
      "paper: smaller time interval => more similar positional encodings\n"
      "=> more similar attention; TAPE carries the interval, PE cannot.\n",
      static_cast<long long>(corr_users),
      corr_sum / std::max<int64_t>(1, corr_users));
  return 0;
}
