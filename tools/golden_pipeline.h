// The golden-metrics regression pipeline, shared by the CI test
// (tests/golden_metrics_test.cpp) and the refresh tool
// (tools/refresh_golden_metrics.cc).
//
// A tiny fixed-seed synthetic train+eval run whose HR@{5,10} / NDCG@{5,10}
// are checked into tests/golden/golden_metrics.json and compared EXACTLY in
// CI. Every quantity in the chain is deterministic: data generation, training
// and candidate sampling are seeded, the kernel backend is pinned to one
// thread AND to the scalar fp32 reference path (the AVX2/NEON kernels round
// differently, so kernel selection drift must not perturb this harness —
// SIMD and int8 scoring are validated by tolerance in tests/quant_test and
// tests/simd_kernels_test instead), and the batched evaluator is
// bit-identical to sequential scoring at
// any batch size. Doubles are serialised with %.17g, which round-trips
// exactly, so the comparison is EXPECT_EQ, not EXPECT_NEAR — any drift in
// metrics is a real behaviour change and must be acknowledged by re-running
// the refresh tool.

#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "core/stisan.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "tensor/kernels.h"

namespace stisan::golden {

/// Runs the pinned pipeline: generate a small Gowalla-like dataset, train a
/// 1-block STiSAN for two epochs, evaluate through the batched pipeline.
/// Takes a few seconds on one core.
inline std::map<std::string, double> ComputeGoldenMetrics() {
  kernels::SetNumThreads(1);
  // Pin the scalar reference kernels (equivalent to STISAN_SIMD=0) for the
  // whole process — the exact %.17g comparison must see one backend only.
  kernels::SetSimdEnabledForTesting(0);

  auto dataset = data::GenerateSynthetic(data::GowallaLikeConfig(0.08));
  auto split = data::TrainTestSplit(dataset, {.max_seq_len = 12});

  core::StisanOptions options;
  options.poi_dim = 8;
  options.geo.dim = 8;
  options.geo.fourier_dim = 4;
  options.num_blocks = 1;
  options.train.epochs = 2;
  options.train.seed = 20220501;
  options.train.max_train_windows = 60;
  core::StisanModel model(dataset, options);
  model.Fit(dataset, split.train);

  eval::CandidateGenerator generator(dataset);
  eval::EvalOptions eval_options;
  eval_options.num_negatives = 50;
  eval_options.batch_size = 8;
  auto acc = eval::Evaluate(static_cast<eval::BatchScorer&>(model), split.test,
                            generator, eval_options);

  std::map<std::string, double> metrics = acc.Means();
  metrics["MRR"] = acc.MeanReciprocalRank();
  metrics["count"] = static_cast<double>(acc.count());
  return metrics;
}

/// Serialises metrics as a flat JSON object, keys sorted (std::map order),
/// doubles at 17 significant digits (lossless round-trip).
inline std::string ToJson(const std::map<std::string, double>& metrics) {
  std::string out = "{\n";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    if (!first) out += ",\n";
    first = false;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  \"%s\": %.17g", key.c_str(), value);
    out += buf;
  }
  out += "\n}\n";
  return out;
}

/// Parses the flat JSON objects ToJson produces (string keys, numeric
/// values; no nesting, no escapes). Malformed entries are skipped.
inline std::map<std::string, double> ParseFlatJson(const std::string& text) {
  std::map<std::string, double> out;
  size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const size_t key_end = text.find('"', pos + 1);
    if (key_end == std::string::npos) break;
    const std::string key = text.substr(pos + 1, key_end - pos - 1);
    size_t cursor = key_end + 1;
    while (cursor < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[cursor])) ||
            text[cursor] == ':')) {
      ++cursor;
    }
    if (cursor < text.size() &&
        (text[cursor] == '-' || text[cursor] == '+' ||
         std::isdigit(static_cast<unsigned char>(text[cursor])))) {
      out[key] = std::strtod(text.c_str() + cursor, nullptr);
    }
    pos = key_end + 1;
  }
  return out;
}

}  // namespace stisan::golden
