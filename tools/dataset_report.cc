// dataset_report — profiles a check-in dataset (CSV or synthetic preset):
// size, interval and jump distributions, mobility range, popularity
// concentration, revisit behaviour, and session structure.
//
// Usage:
//   dataset_report --data checkins.csv
//   dataset_report --preset weeplaces --scale 0.3

#include <cstdio>
#include <cstring>
#include <string>

#include "data/csv_loader.h"
#include "data/stats.h"
#include "data/synthetic.h"

using namespace stisan;

int main(int argc, char** argv) {
  std::string csv;
  std::string preset;
  double scale = 0.3;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--data") == 0) csv = argv[i + 1];
    if (std::strcmp(argv[i], "--preset") == 0) preset = argv[i + 1];
    if (std::strcmp(argv[i], "--scale") == 0) scale = std::atof(argv[i + 1]);
  }

  data::Dataset dataset;
  if (!csv.empty()) {
    auto loaded = data::LoadCsv(csv, csv);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(loaded.value());
  } else {
    data::SyntheticConfig cfg;
    if (preset == "brightkite") {
      cfg = data::BrightkiteLikeConfig(scale);
    } else if (preset == "weeplaces") {
      cfg = data::WeeplacesLikeConfig(scale);
    } else if (preset == "changchun") {
      cfg = data::ChangchunLikeConfig(scale);
    } else {
      cfg = data::GowallaLikeConfig(scale);
    }
    dataset = data::GenerateSynthetic(cfg);
  }

  std::printf("dataset: %s\n", dataset.Stats().ToString().c_str());
  std::printf("\nintervals (hours):\n  %s\n",
              data::IntervalHoursDistribution(dataset).ToString().c_str());
  std::printf("jumps (km):\n  %s\n",
              data::JumpKmDistribution(dataset).ToString().c_str());
  std::printf("radius of gyration (km):\n  %s\n",
              data::RadiusOfGyrationDistribution(dataset).ToString().c_str());
  std::printf("\npopularity gini: %.3f\n", data::PopularityGini(dataset));
  std::printf("revisit rate:    %.3f\n", data::RevisitRate(dataset));

  auto sessions = data::ComputeSessionStats(dataset, /*gap_hours=*/8.0);
  std::printf(
      "\nsessions (8 h gap threshold):\n"
      "  mean length            %.2f check-ins\n"
      "  mean sessions per user %.2f\n"
      "  within-session jump    %.2f km\n"
      "  between-session jump   %.2f km\n",
      sessions.mean_session_length, sessions.mean_sessions_per_user,
      sessions.mean_within_session_km, sessions.mean_between_session_km);
  return 0;
}
