// Regenerates tests/golden/golden_metrics.json from the pinned golden
// pipeline (see golden_pipeline.h). Run after any intentional change to
// model numerics, then commit the updated JSON alongside the change:
//
//   ./build/tools/refresh_golden_metrics            # writes the default path
//   ./build/tools/refresh_golden_metrics out.json   # writes elsewhere
//
// Prints old vs new values so the diff is visible in the terminal too.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "golden_pipeline.h"

#ifndef STISAN_GOLDEN_JSON
#define STISAN_GOLDEN_JSON "tests/golden/golden_metrics.json"
#endif

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : STISAN_GOLDEN_JSON;

  std::map<std::string, double> previous;
  {
    std::ifstream in(path);
    if (in.good()) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      previous = stisan::golden::ParseFlatJson(buffer.str());
    }
  }

  std::printf("running golden pipeline (fixed seeds, 1 thread)...\n");
  const auto metrics = stisan::golden::ComputeGoldenMetrics();

  std::printf("%-10s %-24s %-24s\n", "metric", "old", "new");
  for (const auto& [key, value] : metrics) {
    const auto it = previous.find(key);
    if (it == previous.end()) {
      std::printf("%-10s %-24s %-24.17g\n", key.c_str(), "(absent)", value);
    } else {
      std::printf("%-10s %-24.17g %-24.17g%s\n", key.c_str(), it->second,
                  value, it->second == value ? "" : "  <- changed");
    }
  }

  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  out << stisan::golden::ToJson(metrics);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
