// stisan — command-line interface to the library.
//
// Subcommands:
//   generate   write a synthetic check-in CSV
//   train      train STiSAN on a CSV and save a checkpoint
//   evaluate   evaluate a checkpoint with the paper's protocol
//   recommend  print Top-K next-POI recommendations for one user
//
// Examples:
//   stisan_cli generate --preset gowalla --scale 0.3 --out city.csv
//   stisan_cli train --data city.csv --epochs 12 --ckpt model.bin
//   stisan_cli evaluate --data city.csv --ckpt model.bin
//   stisan_cli recommend --data city.csv --ckpt model.bin --user 3 --k 10
//
// The model configuration (dims, blocks, thresholds) must match between
// train and evaluate/recommend; it is controlled by the same flags and
// defaults in both.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/stisan.h"
#include "data/csv_loader.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "obs/metrics.h"
#include "train/signal.h"
#include "util/io_env.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

using namespace stisan;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = flags.find(key);
    return it != flags.end() ? it->second : fallback;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = flags.find(key);
    return it != flags.end() ? std::atof(it->second.c_str()) : fallback;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = flags.find(key);
    return it != flags.end() ? std::atoll(it->second.c_str()) : fallback;
  }
  bool Has(const std::string& key) const { return flags.contains(key); }
};

Result<Args> ParseArgs(int argc, char** argv) {
  if (argc < 2) return Status::InvalidArgument("missing command");
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) {
      return Status::InvalidArgument("expected --flag, got: " + flag);
    }
    flag = flag.substr(2);
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + flag + " needs a value");
    }
    args.flags[flag] = argv[++i];
  }
  return args;
}

void PrintUsage() {
  std::printf(
      "usage: stisan_cli <command> [--flag value ...]\n\n"
      "commands:\n"
      "  generate   --out FILE [--preset gowalla|brightkite|weeplaces|\n"
      "             changchun] [--scale F] [--seed N]\n"
      "  train      --data FILE --ckpt FILE [--epochs N] [--seq-len N]\n"
      "             [--poi-dim N] [--geo-dim N] [--blocks N] [--lr F]\n"
      "             [--negatives N] [--temperature F] [--kt-days F]\n"
      "             [--kd-km F] [--min-user N] [--min-poi N] [--verbose 1]\n"
      "             [--ckpt-every N] [--keep-ckpts K] [--resume 1]\n"
      "             (--ckpt-every enables crash-safe epoch checkpoints in\n"
      "              FILE.d; --resume continues from the newest valid one;\n"
      "              SIGINT/SIGTERM checkpoint gracefully and exit 130)\n"
      "             [--metrics-json FILE] [--metrics-every N]\n"
      "  evaluate   --data FILE --ckpt FILE [same model flags as train]\n"
      "             [--metrics-json FILE]\n"
      "  recommend  --data FILE --ckpt FILE --user N [--k N]\n"
      "             [same model flags as train]\n\n"
      "observability: --metrics-json writes the obs-registry snapshot\n"
      "  (counters, gauges, timing histograms) as sorted JSON, atomically\n"
      "  via temp+rename. --metrics-every N also snapshots every N epochs\n"
      "  during training. Strictly passive: results are bit-identical with\n"
      "  or without these flags.\n\n"
      "CSV format: user,poi,lat,lon,timestamp (header optional)\n");
}

core::StisanOptions ModelOptions(const Args& args) {
  core::StisanOptions opts;
  opts.poi_dim = args.GetInt("poi-dim", 16);
  opts.geo.dim = args.GetInt("geo-dim", 16);
  opts.geo.fourier_dim = args.GetInt("fourier-dim", opts.geo.dim / 2);
  opts.num_blocks = args.GetInt("blocks", 2);
  opts.dropout = static_cast<float>(args.GetDouble("dropout", 0.2));
  opts.relation.kt_days = args.GetDouble("kt-days", 10.0);
  opts.relation.kd_km = args.GetDouble("kd-km", 15.0);
  opts.train.epochs = args.GetInt("epochs", 12);
  opts.train.lr = static_cast<float>(args.GetDouble("lr", 0.001));
  opts.train.num_negatives = args.GetInt("negatives", 15);
  opts.train.temperature =
      static_cast<float>(args.GetDouble("temperature", 1.0));
  opts.train.knn_neighborhood = args.GetInt("knn", 100);
  opts.train.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  opts.train.verbose = args.GetInt("verbose", 0) != 0;
  opts.train.metrics_json = args.Get("metrics-json", "");
  opts.train.metrics_every = args.GetInt("metrics-every", 0);
  return opts;
}

// Writes the obs-registry snapshot to --metrics-json (when given) and logs
// the one-line summary. Runs after the command's real work, so the snapshot
// can never influence it.
void EmitMetrics(const Args& args) {
  const std::string path = args.Get("metrics-json", "");
  const auto snapshot = obs::TakeSnapshot();
  STISAN_LOG(INFO) << obs::SummaryLine(snapshot);
  if (path.empty()) return;
  Status st = WriteFileAtomic(Env::Default(), path, obs::ToJson(snapshot));
  if (!st.ok()) {
    std::fprintf(stderr, "warning: --metrics-json write failed: %s\n",
                 st.ToString().c_str());
    return;
  }
  std::printf("wrote metrics snapshot: %s\n", path.c_str());
}

// Checkpoint fingerprint: the model architecture plus the training window
// length. seq-len does not change parameter shapes, so only the fingerprint
// can catch evaluating a checkpoint with a different --seq-len.
std::string CheckpointFingerprint(const core::StisanModel& model,
                                  int64_t seq_len) {
  return model.ConfigFingerprint() +
         StrFormat(" seq_len=%lld", static_cast<long long>(seq_len));
}

Result<data::Dataset> LoadAndFilter(const Args& args) {
  const std::string path = args.Get("data", "");
  if (path.empty()) return Status::InvalidArgument("--data is required");
  STISAN_ASSIGN_OR_RETURN(data::Dataset raw, data::LoadCsv(path, path));
  data::FilterOptions filter;
  filter.min_user_checkins = args.GetInt("min-user", 20);
  filter.min_poi_checkins = args.GetInt("min-poi", 10);
  data::Dataset filtered = data::FilterCold(raw, filter);
  std::printf("loaded %s: %s\n", path.c_str(),
              filtered.Stats().ToString().c_str());
  if (filtered.num_users() == 0) {
    return Status::FailedPrecondition(
        "no users survive cold filtering; lower --min-user/--min-poi");
  }
  return filtered;
}

int Generate(const Args& args) {
  const std::string out = args.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "error: --out is required\n");
    return 1;
  }
  const std::string preset = args.Get("preset", "gowalla");
  const double scale = args.GetDouble("scale", 0.3);
  data::SyntheticConfig cfg;
  if (preset == "gowalla") {
    cfg = data::GowallaLikeConfig(scale);
  } else if (preset == "brightkite") {
    cfg = data::BrightkiteLikeConfig(scale);
  } else if (preset == "weeplaces") {
    cfg = data::WeeplacesLikeConfig(scale);
  } else if (preset == "changchun") {
    cfg = data::ChangchunLikeConfig(scale);
  } else {
    std::fprintf(stderr, "error: unknown preset '%s'\n", preset.c_str());
    return 1;
  }
  if (args.Has("seed")) {
    cfg.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  }
  data::Dataset ds = data::GenerateSynthetic(cfg);
  Status st = data::SaveCsv(ds, out);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %s\n", out.c_str(), ds.Stats().ToString().c_str());
  return 0;
}

int Train(const Args& args) {
  const std::string ckpt = args.Get("ckpt", "");
  if (ckpt.empty()) {
    std::fprintf(stderr, "error: --ckpt is required\n");
    return 1;
  }
  auto dataset = LoadAndFilter(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const int64_t seq_len = args.GetInt("seq-len", 32);
  data::Split split =
      data::TrainTestSplit(*dataset, {.max_seq_len = seq_len});
  std::printf("train windows: %zu, test instances: %zu\n",
              split.train.size(), split.test.size());

  core::StisanOptions opts = ModelOptions(args);
  const int64_t ckpt_every = args.GetInt("ckpt-every", 0);
  const bool resume = args.GetInt("resume", 0) != 0;
  if (ckpt_every > 0 || resume) {
    opts.train.checkpoint.dir = ckpt + ".d";
    opts.train.checkpoint.every_epochs = std::max<int64_t>(1, ckpt_every);
    opts.train.checkpoint.keep_last =
        std::max<int64_t>(1, args.GetInt("keep-ckpts", 3));
    opts.train.checkpoint.resume = resume;
  }
  train::InstallStopSignalHandlers();

  core::StisanModel model(*dataset, opts);
  Stopwatch watch;
  model.Fit(*dataset, split.train);
  const train::TrainResult& result = model.last_train_result();
  if (!result.status.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status.ToString().c_str());
    return 1;
  }
  if (result.resumed) {
    std::printf("resumed from %s\n", opts.train.checkpoint.dir.c_str());
  }
  if (result.interrupted) {
    std::printf("interrupted after %lld completed epochs%s\n",
                static_cast<long long>(result.epochs_completed),
                opts.train.checkpoint.dir.empty()
                    ? ""
                    : "; rerun with --resume 1 to continue");
    return 130;
  }
  std::printf("trained %lld epochs in %.1fs (final loss %.4f)\n",
              static_cast<long long>(result.epochs_completed),
              watch.ElapsedSeconds(), model.last_epoch_loss());

  Status st = model.SaveParameters(
      ckpt, CheckpointFingerprint(model, seq_len));
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved checkpoint: %s\n", ckpt.c_str());
  // Re-emit after SaveParameters so the snapshot includes the final model
  // checkpoint's bytes/latency (the trainer already wrote one at run end).
  EmitMetrics(args);
  return 0;
}

int Evaluate(const Args& args) {
  auto dataset = LoadAndFilter(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const int64_t seq_len = args.GetInt("seq-len", 32);
  data::Split split =
      data::TrainTestSplit(*dataset, {.max_seq_len = seq_len});

  core::StisanModel model(*dataset, ModelOptions(args));
  const std::string ckpt = args.Get("ckpt", "");
  if (!ckpt.empty()) {
    Status st =
        model.LoadParameters(ckpt, CheckpointFingerprint(model, seq_len));
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("loaded checkpoint: %s\n", ckpt.c_str());
  } else {
    std::printf("note: no --ckpt given, evaluating an untrained model\n");
  }

  eval::CandidateGenerator candidates(*dataset);
  eval::EvalOptions eval_options;
  eval_options.batch_size = args.GetInt("eval-batch", 32);
  auto acc = eval::Evaluate(static_cast<eval::BatchScorer&>(model),
                            split.test, candidates, eval_options);
  for (const auto& [name, value] : acc.Means()) {
    std::printf("%-8s %.4f\n", name.c_str(), value);
  }
  std::printf("%-8s %.4f\n", "MRR", acc.MeanReciprocalRank());
  Rng rng(1);
  auto ci = eval::BootstrapHitRateCi(acc.ranks(), 10, 0.95, rng);
  std::printf("HR@10 95%% CI: [%.4f, %.4f] over %lld users\n", ci.lo, ci.hi,
              static_cast<long long>(acc.count()));
  EmitMetrics(args);
  return 0;
}

int Recommend(const Args& args) {
  auto dataset = LoadAndFilter(args);
  if (!dataset.ok()) {
    std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  const int64_t user = args.GetInt("user", 0);
  if (user < 0 || user >= dataset->num_users()) {
    std::fprintf(stderr, "error: --user out of range [0, %lld)\n",
                 static_cast<long long>(dataset->num_users()));
    return 1;
  }
  const int64_t k = args.GetInt("k", 10);
  const int64_t seq_len = args.GetInt("seq-len", 32);

  core::StisanModel model(*dataset, ModelOptions(args));
  const std::string ckpt = args.Get("ckpt", "");
  if (!ckpt.empty()) {
    Status st =
        model.LoadParameters(ckpt, CheckpointFingerprint(model, seq_len));
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  // Build an inference instance from the user's full history.
  const auto& seq = dataset->user_seqs[static_cast<size_t>(user)];
  data::EvalInstance inst;
  inst.user = user;
  const size_t begin =
      seq.size() > static_cast<size_t>(seq_len) ? seq.size() - seq_len : 0;
  std::vector<data::Visit> recent(seq.begin() + begin, seq.end());
  inst.first_real = data::PadHead(recent, seq_len, &inst.poi, &inst.t);
  inst.target = seq.back().poi;  // candidates centre on the last location
  inst.target_time = seq.back().timestamp;
  for (const auto& v : seq) inst.visited.push_back(v.poi);

  eval::CandidateGenerator candidates(*dataset);
  auto cands = candidates.Candidates(inst, 200);
  // Drop the pseudo-target (index 0): recommend unvisited POIs only.
  cands.erase(cands.begin());
  if (cands.empty()) {
    std::fprintf(stderr, "error: no unvisited candidates near the user\n");
    return 1;
  }
  auto scores = model.Score(inst, cands);
  std::vector<size_t> order(cands.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });

  std::printf("top-%lld next-POI recommendations for user %lld:\n",
              static_cast<long long>(k), static_cast<long long>(user));
  const auto& here = dataset->poi_location(seq.back().poi);
  for (int64_t i = 0; i < k && i < static_cast<int64_t>(order.size()); ++i) {
    const int64_t poi = cands[order[static_cast<size_t>(i)]];
    const auto& loc = dataset->poi_location(poi);
    std::printf("  %2lld. POI %-6lld score %8.3f at %s (%.2f km away)\n",
                static_cast<long long>(i + 1), static_cast<long long>(poi),
                scores[order[static_cast<size_t>(i)]],
                geo::ToString(loc).c_str(), geo::HaversineKm(here, loc));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ParseArgs(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "error: %s\n\n", args.status().ToString().c_str());
    PrintUsage();
    return 2;
  }
  if (args->command == "generate") return Generate(*args);
  if (args->command == "train") return Train(*args);
  if (args->command == "evaluate") return Evaluate(*args);
  if (args->command == "recommend") return Recommend(*args);
  if (args->command == "help" || args->command == "--help") {
    PrintUsage();
    return 0;
  }
  std::fprintf(stderr, "error: unknown command '%s'\n\n",
               args->command.c_str());
  PrintUsage();
  return 2;
}
