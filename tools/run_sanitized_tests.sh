#!/usr/bin/env bash
# Builds and runs the unit-test suite under ASan and UBSan.
#
#   tools/run_sanitized_tests.sh            # both sanitizers
#   tools/run_sanitized_tests.sh asan       # one of them
#
# Uses the asan/ubsan presets from CMakePresets.json (build trees
# build-asan/ and build-ubsan/); the matching test presets run only
# "unit"-labeled tests, skipping the end-to-end CLI/tool smoke tests
# whose sanitized runtimes are excessive on one core.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("${@:-asan ubsan}")
[[ $# -eq 0 ]] && presets=(asan ubsan)

for preset in "${presets[@]}"; do
  echo "==== ${preset}: configure + build ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  echo "==== ${preset}: ctest ===="
  ctest --preset "${preset}"
done
