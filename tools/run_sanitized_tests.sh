#!/usr/bin/env bash
# Builds and runs the unit-test suite under ASan, UBSan and TSan.
#
#   tools/run_sanitized_tests.sh            # all three sanitizers
#   tools/run_sanitized_tests.sh asan       # one of them
#
# Uses the asan/ubsan/tsan presets from CMakePresets.json (build trees
# build-asan/, build-ubsan/ and build-tsan/); the asan/ubsan test presets
# run the "unit", "robustness", "fused", "obs", "plan", "serve", "quant"
# and "ranking" labels, skipping the end-to-end CLI/tool smoke tests whose sanitized
# runtimes are excessive on one core. The tsan preset runs only the
# concurrency-heavy "serve" and "obs" labels — the memory-safety gates
# add nothing under TSan and its runtime overhead is the largest.
#
# After the unit pass, the "robustness" suite (fault-injection sweeps,
# checkpoint fuzzing, kill/resume determinism) and the "fused" suite
# (fused-attention kernels, arena stress with interleaved train/eval
# scopes) are re-run as explicit gates: torn-write handling and the
# hand-written attention backward/arena recycling are exactly where the
# sanitizers catch out-of-bounds reads that a plain run would miss.
set -euo pipefail
cd "$(dirname "$0")/.."

presets=("${@:-asan ubsan tsan}")
[[ $# -eq 0 ]] && presets=(asan ubsan tsan)

for preset in "${presets[@]}"; do
  echo "==== ${preset}: configure + build ===="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "$(nproc)"
  echo "==== ${preset}: ctest (unit) ===="
  ctest --preset "${preset}"
  if [[ "${preset}" == "tsan" ]]; then
    # The tsan test preset already covers its whole scope (serve|obs):
    # worker-thread handoffs, admission blocking/shedding, shutdown
    # promise sweeps and the lock-free metrics registry. The remaining
    # gates are memory-safety sweeps; skip them under TSan.
    continue
  fi
  echo "==== ${preset}: ctest (robustness gate) ===="
  (cd "build-${preset}" && \
   ASAN_OPTIONS="halt_on_error=1" \
   UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
   ctest -L robustness --output-on-failure)
  echo "==== ${preset}: ctest (fused-attention gate) ===="
  (cd "build-${preset}" && \
   ASAN_OPTIONS="halt_on_error=1" \
   UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
   STISAN_ARENA=1 ctest -L fused --output-on-failure)
  echo "==== ${preset}: ctest (observability gate) ===="
  # Concurrent counter/histogram increments from the thread pool are the
  # registry's hot path; running the obs label explicitly under the
  # sanitizers stresses exactly the lock-free parts.
  (cd "build-${preset}" && \
   ASAN_OPTIONS="halt_on_error=1" \
   UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
   ctest -L obs --output-on-failure)
  echo "==== ${preset}: ctest (static-plan gate) ===="
  # Replayed steps reuse exact-size pooled buffers and skip the backward
  # topo sort; the plan label re-runs the parity suite with plans and the
  # arena forced on so the sanitizers sweep the capture/replay machinery.
  (cd "build-${preset}" && \
   ASAN_OPTIONS="halt_on_error=1" \
   UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
   STISAN_STATIC_PLAN=1 STISAN_ARENA=1 ctest -L plan --output-on-failure)
  echo "==== ${preset}: ctest (serving gate) ===="
  # The serving runtime rewrites attention rows into long-lived per-user
  # K/V buffers and batches concurrent requests through a worker thread —
  # exactly the kind of buffer-reuse and cross-thread handoff the
  # sanitizers exist for; the fuzzed session-store interleavings run here
  # with halt_on_error so any stale-row read fails loudly.
  (cd "build-${preset}" && \
   ASAN_OPTIONS="halt_on_error=1" \
   UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
   ctest -L serve --output-on-failure)
  echo "==== ${preset}: ctest (simd/quant gate) ===="
  # The AVX2 kernels and the int8 GEMM read 8/16/32-wide lanes up to an
  # explicitly computed bound with scalar tails — precisely where an
  # off-by-one becomes an out-of-bounds vector load, and (under UBSan)
  # where misaligned or overflowing lane arithmetic would hide. STISAN_SIMD=1
  # makes the vector paths unconditional even if a future default flips.
  (cd "build-${preset}" && \
   ASAN_OPTIONS="halt_on_error=1" \
   UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
   STISAN_SIMD=1 ctest -L quant --output-on-failure)
  echo "==== ${preset}: ctest (catalog-ranking gate) ===="
  # The two-stage ranker's hot path reuses per-worker query scratch and
  # streams candidate pools through caller-owned buffers across threads;
  # the ranking label re-runs the brute-force property suite and the
  # full-vs-pruned parity checks where a stale span or an off-by-one in
  # the sparse cell map would surface as an out-of-bounds read.
  (cd "build-${preset}" && \
   ASAN_OPTIONS="halt_on_error=1" \
   UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
   ctest -L ranking --output-on-failure)
done
