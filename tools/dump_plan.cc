// Prints the static execution plan a model capture produces (DESIGN.md §13):
// the instruction list with slot references, fused op kinds, the backward
// invocation order, the exact allocation footprint, and the arena's
// exact-pool state after a few replayed steps.
//
// Usage: dump_plan [--n <seq_len>] [--d <dim>] [--blocks <n>] [--steps <n>]
//
// Builds a small IaabEncoder, runs one capture step and `steps - 1` replay
// steps of a full forward+backward under a plan scope, then dumps every
// cached plan and the capture/replay counters.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/iaab.h"
#include "plan/plan.h"
#include "tensor/arena.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"

namespace {

int64_t ArgInt(int argc, char** argv, const char* flag, int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stisan;

  const int64_t n = ArgInt(argc, argv, "--n", 12);
  const int64_t d = ArgInt(argc, argv, "--d", 8);
  const int64_t blocks = ArgInt(argc, argv, "--blocks", 1);
  const int64_t steps = ArgInt(argc, argv, "--steps", 3);
  kernels::SetNumThreads(1);

  if (!plan::Enabled()) {
    std::fprintf(stderr,
                 "static plans are disabled (STISAN_STATIC_PLAN=0); nothing "
                 "to dump\n");
    return 1;
  }

  Rng rng(7);
  core::IaabOptions options;
  options.dim = d;
  options.ffn_hidden = 2 * d;
  options.dropout = 0.1f;
  core::IaabEncoder encoder(options, blocks, rng);

  // Fixed per-run ingredients: a relation bias, a causal mask and one input
  // embedding matrix per step (fresh leaf, same shape — the replay case).
  Tensor relation = ops::Softmax(Tensor::Randn({n, n}, rng, 0.5f));
  Tensor mask = Tensor::Zeros({n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) mask.set({i, j}, -1e9f);
  }

  plan::Scope scope;
  for (int64_t s = 0; s < steps; ++s) {
    for (Tensor p : encoder.Parameters()) p.ZeroGrad();
    Rng step_rng(100 + static_cast<uint64_t>(s));
    plan::StepScope step;
    Tensor x = Tensor::Randn({n, d}, step_rng, 0.1f);
    Tensor out = encoder.Forward(x, relation, mask, step_rng);
    ops::Sum(ops::Square(out)).Backward();
  }

  std::printf("IaabEncoder: n=%lld d=%lld blocks=%lld, %lld step(s)\n",
              static_cast<long long>(n), static_cast<long long>(d),
              static_cast<long long>(blocks), static_cast<long long>(steps));
  const plan::Stats stats = plan::GetStats();
  std::printf(
      "steps=%llu captures=%llu replays=%llu recaptures=%llu\n\n",
      static_cast<unsigned long long>(stats.steps),
      static_cast<unsigned long long>(stats.captures),
      static_cast<unsigned long long>(stats.replays),
      static_cast<unsigned long long>(stats.recaptures));
  std::printf("%s", plan::DumpActivePlans().c_str());

  const arena::Stats astats = arena::GetStats();
  std::printf(
      "\narena: exact_hits=%llu pow2_hits=%llu misses=%llu exact_bytes=%zu\n",
      static_cast<unsigned long long>(astats.exact_hits),
      static_cast<unsigned long long>(astats.hits),
      static_cast<unsigned long long>(astats.misses), astats.exact_bytes);
  return 0;
}
