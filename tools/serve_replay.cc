// serve_replay — drives the long-lived recommendation service with a
// simulated check-in replay from the synthetic generator and reports
// serving throughput plus request-latency percentiles.
//
// All check-ins from the selected users are merged into one global
// timestamp-ordered stream; each event becomes an Append followed by a
// ScoreAsync against a fixed candidate set, so concurrent requests from
// different users coalesce in the service's batching window exactly as
// they would in production.
//
// Usage:
//   serve_replay --preset gowalla --scale 0.08 --users 64
//                --warmup 3 --candidates 100
//                --max-sessions 32 --batch-window 200 --max-batch 32
//                --max-seq-len 100 [--tape] [--metrics-json FILE]
//
//   --users N         cap on replayed users (default 64)
//   --warmup K        per-user prefix appended before the timed phase
//   --candidates C    candidate-set size per request (default 100)
//   --max-sessions N  resident-session cap (LRU eviction beyond it)
//   --batch-window US coalescing window in microseconds (0 = no wait)
//   --max-batch N     cut the window short once N requests queue
//   --max-seq-len N   serving window; longer histories fall back to the
//                     batched trailing-window path
//   --tape            use the full TAPE model (preprocess tier) instead
//                     of the K/V-cache tier
//   --metrics-json F  write the obs-registry snapshot (same flag as the
//                     trainer CLI) with the serve/* counters and the
//                     time/serve/request histogram
//
// The incremental engine covers STiSAN configurations; the same driver
// exercises the pure fallback path when --max-seq-len is set below the
// replayed history lengths.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <string>
#include <vector>

#include "core/stisan.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "serve/service.h"
#include "util/io_env.h"
#include "util/rng.h"

using namespace stisan;

namespace {

struct ReplayEvent {
  int64_t user = 0;
  int64_t poi = 0;
  double timestamp = 0.0;
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset = "gowalla";
  std::string metrics_json;
  double scale = 0.08;
  int64_t users = 64;
  int64_t warmup = 3;
  int64_t candidates = 100;
  bool use_tape = false;
  serve::ServeOptions so;
  so.max_sessions = 32;
  so.batch_window_us = 200;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() { return i + 1 < argc ? argv[++i] : ""; };
    if (std::strcmp(argv[i], "--preset") == 0) preset = next();
    else if (std::strcmp(argv[i], "--scale") == 0) scale = std::atof(next());
    else if (std::strcmp(argv[i], "--users") == 0) users = std::atoll(next());
    else if (std::strcmp(argv[i], "--warmup") == 0) warmup = std::atoll(next());
    else if (std::strcmp(argv[i], "--candidates") == 0)
      candidates = std::atoll(next());
    else if (std::strcmp(argv[i], "--max-sessions") == 0)
      so.max_sessions = std::atoll(next());
    else if (std::strcmp(argv[i], "--batch-window") == 0)
      so.batch_window_us = std::atoll(next());
    else if (std::strcmp(argv[i], "--max-batch") == 0)
      so.max_batch = std::atoll(next());
    else if (std::strcmp(argv[i], "--max-seq-len") == 0)
      so.max_seq_len = std::atoll(next());
    else if (std::strcmp(argv[i], "--tape") == 0) use_tape = true;
    else if (std::strcmp(argv[i], "--metrics-json") == 0)
      metrics_json = next();
  }

  data::SyntheticConfig cfg;
  if (preset == "brightkite") cfg = data::BrightkiteLikeConfig(scale);
  else if (preset == "weeplaces") cfg = data::WeeplacesLikeConfig(scale);
  else if (preset == "changchun") cfg = data::ChangchunLikeConfig(scale);
  else cfg = data::GowallaLikeConfig(scale);
  const data::Dataset dataset = data::GenerateSynthetic(cfg);

  core::StisanOptions opts;
  opts.use_tape = use_tape;
  opts.knn_negatives = false;  // frozen model, no training
  core::StisanModel model(dataset, opts);

  // Global timestamp-ordered replay stream over the selected users.
  std::vector<ReplayEvent> warm, timed;
  int64_t replayed_users = 0;
  for (size_t u = 0; u < dataset.user_seqs.size() && replayed_users < users;
       ++u) {
    const auto& seq = dataset.user_seqs[u];
    if (static_cast<int64_t>(seq.size()) <= warmup) continue;
    ++replayed_users;
    for (size_t k = 0; k < seq.size(); ++k) {
      auto& out = static_cast<int64_t>(k) < warmup ? warm : timed;
      out.push_back({static_cast<int64_t>(u), seq[k].poi, seq[k].timestamp});
    }
  }
  auto by_time = [](const ReplayEvent& a, const ReplayEvent& b) {
    return a.timestamp < b.timestamp;
  };
  std::stable_sort(warm.begin(), warm.end(), by_time);
  std::stable_sort(timed.begin(), timed.end(), by_time);

  // Fixed candidate set shared by all requests (top-N reranking shape).
  Rng rng(17);
  std::vector<int64_t> cands;
  while (static_cast<int64_t>(cands.size()) < candidates) {
    const int64_t poi = 1 + static_cast<int64_t>(rng.UniformInt(
                                static_cast<uint64_t>(dataset.num_pois())));
    if (std::find(cands.begin(), cands.end(), poi) == cands.end())
      cands.push_back(poi);
  }

  serve::RecommendService service(&model, so);
  std::printf("serve_replay: %lld users, %zu warmup + %zu timed events, "
              "%lld candidates, tier=%s\n",
              static_cast<long long>(replayed_users), warm.size(),
              timed.size(), static_cast<long long>(candidates),
              service.incremental() ? (use_tape ? "preprocess" : "kv-cache")
                                    : "fallback");

  for (const auto& ev : warm) service.Append(ev.user, ev.poi, ev.timestamp);

  // Timed phase: append + score per event, draining futures in a sliding
  // window so the queue stays busy without unbounded growth.
  constexpr size_t kWindow = 256;
  std::deque<std::future<serve::ScoreResult>> inflight;
  std::vector<double> latencies;
  latencies.reserve(timed.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& ev : timed) {
    service.Append(ev.user, ev.poi, ev.timestamp);
    inflight.push_back(service.ScoreAsync(ev.user, cands));
    while (inflight.size() > kWindow) {
      latencies.push_back(inflight.front().get().latency_s);
      inflight.pop_front();
    }
  }
  service.Drain();
  while (!inflight.empty()) {
    latencies.push_back(inflight.front().get().latency_s);
    inflight.pop_front();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::sort(latencies.begin(), latencies.end());
  const double qps = wall > 0 ? static_cast<double>(latencies.size()) / wall
                              : 0.0;
  std::printf("timed phase: %.3f s wall, %zu requests\n", wall,
              latencies.size());
  std::printf("throughput:  %.1f req/s\n", qps);
  std::printf("latency:     p50 %.3f ms   p99 %.3f ms   max %.3f ms\n",
              Percentile(latencies, 0.50) * 1e3,
              Percentile(latencies, 0.99) * 1e3,
              latencies.empty() ? 0.0 : latencies.back() * 1e3);
  std::printf(
      "serve counters: appends=%llu requests=%llu incremental=%llu "
      "fallback=%llu evictions=%llu rebuilds=%llu overflows=%llu\n",
      static_cast<unsigned long long>(obs::GetCounter("serve/appends").Get()),
      static_cast<unsigned long long>(obs::GetCounter("serve/requests").Get()),
      static_cast<unsigned long long>(
          obs::GetCounter("serve/incremental_scored").Get()),
      static_cast<unsigned long long>(
          obs::GetCounter("serve/fallback_scored").Get()),
      static_cast<unsigned long long>(
          obs::GetCounter("serve/evictions").Get()),
      static_cast<unsigned long long>(
          obs::GetCounter("serve/cache_rebuilds").Get()),
      static_cast<unsigned long long>(
          obs::GetCounter("serve/overflows").Get()));

  if (!metrics_json.empty()) {
    const Status s = obs::WriteJsonAtomic(Env::Default(), metrics_json);
    if (!s.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", metrics_json.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("metrics snapshot written to %s\n", metrics_json.c_str());
  }
  return 0;
}
