// serve_replay — drives the long-lived recommendation service with a
// simulated check-in replay from the synthetic generator and reports
// serving throughput plus request-latency percentiles.
//
// All check-ins from the selected users are merged into one global
// timestamp-ordered stream; each event becomes an Append followed by a
// ScoreAsync against a fixed candidate set, so concurrent requests from
// different users coalesce in the service's batching window exactly as
// they would in production.
//
// Usage:
//   serve_replay --preset gowalla --scale 0.08 --users 64
//                --warmup 3 --candidates 100
//                --max-sessions 32 --batch-window 200 --max-batch 32
//                --max-seq-len 100 [--tape] [--metrics-json FILE]
//
//   --users N         cap on replayed users (default 64)
//   --warmup K        per-user prefix appended before the timed phase
//   --candidates C    candidate-set size per request (default 100)
//   --max-sessions N  resident-session cap (LRU eviction beyond it)
//   --batch-window US coalescing window in microseconds (0 = no wait)
//   --max-batch N     cut the window short once N requests queue
//   --max-seq-len N   serving window; longer histories fall back to the
//                     batched trailing-window path
//   --tape            use the full TAPE model (preprocess tier) instead
//                     of the K/V-cache tier
//   --metrics-json F  write the obs-registry snapshot (same flag as the
//                     trainer CLI) with the serve/* counters and the
//                     time/serve/request histogram
//
// Overload mode (open-loop load sweep against the admission-controlled
// service; see DESIGN.md §15):
//
//   serve_replay --offered-rates 200,500,1000,2000 --duration 2
//                --deadline-ms 50 --max-queue 256 --policy shed [--stale]
//                [--overload-json BENCH_serving_overload.json]
//
//   --offered-rates R1,R2,..  requests/second per sweep point; the
//                     producer paces each request on a fixed schedule and
//                     never waits for responses (open loop), so offered
//                     load keeps arriving when the service falls behind
//   --duration S      seconds of offered load per sweep point
//   --deadline-ms D   per-request deadline (0 = none)
//   --max-queue N     admission bound on the op queue (0 = unbounded)
//   --policy P        block | reject | shed (ServeOptions::queue_policy)
//   --stale           serve expired requests from the resident cached
//                     prefix instead of failing them
//   --overload-json F write the sweep (goodput, shed rate, latency
//                     percentiles per offered rate) as JSON
//
// The incremental engine covers STiSAN configurations; the same driver
// exercises the pure fallback path when --max-seq-len is set below the
// replayed history lengths.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/stisan.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "serve/service.h"
#include "util/io_env.h"
#include "util/rng.h"

using namespace stisan;

namespace {

struct ReplayEvent {
  int64_t user = 0;
  int64_t poi = 0;
  double timestamp = 0.0;
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

// One open-loop sweep point: offer `rate` req/s for `duration_s` against a
// fresh admission-controlled service and classify every response.
struct OverloadPoint {
  double offered_rate = 0.0;
  size_t offered = 0;           // requests actually sent
  size_t ok = 0;                // scored (fresh or stale) within contract
  size_t stale = 0;             // subset of ok served from the cached prefix
  size_t shed_or_rejected = 0;  // kResourceExhausted (admission control)
  size_t deadline_exceeded = 0;
  size_t other_errors = 0;      // kInternal / kUnavailable (should be 0)
  double wall_s = 0.0;
  double goodput_rps = 0.0;
  double shed_rate = 0.0;  // (shed_or_rejected + deadline_exceeded) / offered
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

OverloadPoint RunOverloadPoint(core::StisanModel* model,
                               const serve::ServeOptions& base_options,
                               const std::vector<ReplayEvent>& events,
                               const std::vector<int64_t>& cands,
                               double rate, double duration_s,
                               int64_t deadline_us) {
  obs::ResetAllForTesting();
  serve::ServeOptions so = base_options;
  so.start_worker = true;
  serve::RecommendService service(model, so);

  OverloadPoint point;
  point.offered_rate = rate;
  const size_t total =
      static_cast<size_t>(std::max(1.0, rate * duration_s));
  const auto period = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(std::chrono::duration<double>(
      1.0 / std::max(rate, 1e-9)));

  std::vector<std::future<serve::ScoreResult>> futures;
  futures.reserve(total);
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < total; ++i) {
    // Open loop: the schedule is fixed in advance; a slow service does
    // not slow the producer down, it just faces a growing queue. (kBlock
    // is the exception by design: backpressure pushes back on arrival.)
    std::this_thread::sleep_until(
        t0 + period * static_cast<int64_t>(i));
    const ReplayEvent& ev = events[i % events.size()];
    (void)service.Append(ev.user, ev.poi, ev.timestamp);
    futures.push_back(service.ScoreAsync(ev.user, cands, deadline_us));
  }
  service.Drain();
  point.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<double> ok_latencies;
  for (auto& fut : futures) {
    serve::ScoreResult r = fut.get();
    ++point.offered;
    if (r.ok()) {
      ++point.ok;
      if (r.stale) ++point.stale;
      ok_latencies.push_back(r.latency_s);
    } else if (r.status.code() == StatusCode::kResourceExhausted) {
      ++point.shed_or_rejected;
    } else if (r.status.code() == StatusCode::kDeadlineExceeded) {
      ++point.deadline_exceeded;
    } else {
      ++point.other_errors;
    }
  }
  std::sort(ok_latencies.begin(), ok_latencies.end());
  point.goodput_rps =
      point.wall_s > 0 ? static_cast<double>(point.ok) / point.wall_s : 0.0;
  point.shed_rate =
      point.offered > 0
          ? static_cast<double>(point.shed_or_rejected +
                                point.deadline_exceeded) /
                static_cast<double>(point.offered)
          : 0.0;
  point.p50_ms = Percentile(ok_latencies, 0.50) * 1e3;
  point.p99_ms = Percentile(ok_latencies, 0.99) * 1e3;
  return point;
}

const char* PolicyName(serve::QueuePolicy policy) {
  switch (policy) {
    case serve::QueuePolicy::kBlock: return "block";
    case serve::QueuePolicy::kRejectNew: return "reject";
    case serve::QueuePolicy::kShedOldest: return "shed";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::string preset = "gowalla";
  std::string metrics_json;
  std::string overload_json;
  std::vector<double> offered_rates;
  double scale = 0.08;
  double duration_s = 2.0;
  double deadline_ms = 50.0;
  int64_t users = 64;
  int64_t warmup = 3;
  int64_t candidates = 100;
  bool use_tape = false;
  serve::ServeOptions so;
  so.max_sessions = 32;
  so.batch_window_us = 200;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() { return i + 1 < argc ? argv[++i] : ""; };
    if (std::strcmp(argv[i], "--preset") == 0) preset = next();
    else if (std::strcmp(argv[i], "--scale") == 0) scale = std::atof(next());
    else if (std::strcmp(argv[i], "--users") == 0) users = std::atoll(next());
    else if (std::strcmp(argv[i], "--warmup") == 0) warmup = std::atoll(next());
    else if (std::strcmp(argv[i], "--candidates") == 0)
      candidates = std::atoll(next());
    else if (std::strcmp(argv[i], "--max-sessions") == 0)
      so.max_sessions = std::atoll(next());
    else if (std::strcmp(argv[i], "--batch-window") == 0)
      so.batch_window_us = std::atoll(next());
    else if (std::strcmp(argv[i], "--max-batch") == 0)
      so.max_batch = std::atoll(next());
    else if (std::strcmp(argv[i], "--max-seq-len") == 0)
      so.max_seq_len = std::atoll(next());
    else if (std::strcmp(argv[i], "--tape") == 0) use_tape = true;
    else if (std::strcmp(argv[i], "--metrics-json") == 0)
      metrics_json = next();
    else if (std::strcmp(argv[i], "--offered-rates") == 0) {
      std::stringstream ss(next());
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        if (!tok.empty()) offered_rates.push_back(std::atof(tok.c_str()));
      }
    }
    else if (std::strcmp(argv[i], "--duration") == 0)
      duration_s = std::atof(next());
    else if (std::strcmp(argv[i], "--deadline-ms") == 0)
      deadline_ms = std::atof(next());
    else if (std::strcmp(argv[i], "--max-queue") == 0)
      so.max_queue = std::atoll(next());
    else if (std::strcmp(argv[i], "--policy") == 0) {
      const std::string p = next();
      if (p == "block") so.queue_policy = serve::QueuePolicy::kBlock;
      else if (p == "reject") so.queue_policy = serve::QueuePolicy::kRejectNew;
      else if (p == "shed") so.queue_policy = serve::QueuePolicy::kShedOldest;
      else {
        std::fprintf(stderr, "unknown --policy %s\n", p.c_str());
        return 2;
      }
    }
    else if (std::strcmp(argv[i], "--stale") == 0) so.allow_stale = true;
    else if (std::strcmp(argv[i], "--overload-json") == 0)
      overload_json = next();
  }

  data::SyntheticConfig cfg;
  if (preset == "brightkite") cfg = data::BrightkiteLikeConfig(scale);
  else if (preset == "weeplaces") cfg = data::WeeplacesLikeConfig(scale);
  else if (preset == "changchun") cfg = data::ChangchunLikeConfig(scale);
  else cfg = data::GowallaLikeConfig(scale);
  const data::Dataset dataset = data::GenerateSynthetic(cfg);

  core::StisanOptions opts;
  opts.use_tape = use_tape;
  opts.knn_negatives = false;  // frozen model, no training
  core::StisanModel model(dataset, opts);

  // Global timestamp-ordered replay stream over the selected users.
  std::vector<ReplayEvent> warm, timed;
  int64_t replayed_users = 0;
  for (size_t u = 0; u < dataset.user_seqs.size() && replayed_users < users;
       ++u) {
    const auto& seq = dataset.user_seqs[u];
    if (static_cast<int64_t>(seq.size()) <= warmup) continue;
    ++replayed_users;
    for (size_t k = 0; k < seq.size(); ++k) {
      auto& out = static_cast<int64_t>(k) < warmup ? warm : timed;
      out.push_back({static_cast<int64_t>(u), seq[k].poi, seq[k].timestamp});
    }
  }
  auto by_time = [](const ReplayEvent& a, const ReplayEvent& b) {
    return a.timestamp < b.timestamp;
  };
  std::stable_sort(warm.begin(), warm.end(), by_time);
  std::stable_sort(timed.begin(), timed.end(), by_time);

  // Fixed candidate set shared by all requests (top-N reranking shape).
  Rng rng(17);
  std::vector<int64_t> cands;
  while (static_cast<int64_t>(cands.size()) < candidates) {
    const int64_t poi = 1 + static_cast<int64_t>(rng.UniformInt(
                                static_cast<uint64_t>(dataset.num_pois())));
    if (std::find(cands.begin(), cands.end(), poi) == cands.end())
      cands.push_back(poi);
  }

  so.num_pois = dataset.num_pois();

  if (!offered_rates.empty()) {
    // Open-loop overload sweep: fresh service + obs registry per offered
    // rate, classify every response, report goodput vs offered load.
    const int64_t deadline_us = static_cast<int64_t>(deadline_ms * 1e3);
    std::printf(
        "serve_replay overload: %zu rates, %.1f s/point, deadline %.1f ms, "
        "max_queue %lld, policy %s, stale %s\n",
        offered_rates.size(), duration_s, deadline_ms,
        static_cast<long long>(so.max_queue), PolicyName(so.queue_policy),
        so.allow_stale ? "on" : "off");
    std::printf(
        "%10s %9s %9s %7s %7s %9s %9s %9s %9s %9s\n", "offered/s", "sent",
        "ok", "stale", "shed", "deadline", "goodput/s", "shedrate", "p50ms",
        "p99ms");
    std::vector<OverloadPoint> sweep;
    for (double rate : offered_rates) {
      OverloadPoint pt = RunOverloadPoint(&model, so, timed, cands, rate,
                                          duration_s, deadline_us);
      std::printf(
          "%10.0f %9zu %9zu %7zu %7zu %9zu %9.1f %9.3f %9.3f %9.3f\n",
          pt.offered_rate, pt.offered, pt.ok, pt.stale, pt.shed_or_rejected,
          pt.deadline_exceeded, pt.goodput_rps, pt.shed_rate, pt.p50_ms,
          pt.p99_ms);
      if (pt.other_errors > 0) {
        std::fprintf(stderr,
                     "warning: %zu unexpected errors at %.0f req/s\n",
                     pt.other_errors, rate);
      }
      sweep.push_back(pt);
    }
    if (!overload_json.empty()) {
      std::ostringstream out;
      out << "{\n  \"tool\": \"serve_replay\",\n  \"mode\": \"overload\",\n";
      out << "  \"preset\": \"" << preset << "\",\n";
      out << "  \"duration_s\": " << duration_s << ",\n";
      out << "  \"deadline_ms\": " << deadline_ms << ",\n";
      out << "  \"max_queue\": " << so.max_queue << ",\n";
      out << "  \"policy\": \"" << PolicyName(so.queue_policy) << "\",\n";
      out << "  \"allow_stale\": " << (so.allow_stale ? "true" : "false")
          << ",\n  \"sweep\": [\n";
      for (size_t i = 0; i < sweep.size(); ++i) {
        const OverloadPoint& pt = sweep[i];
        out << "    {\"offered_rate\": " << pt.offered_rate
            << ", \"offered\": " << pt.offered << ", \"ok\": " << pt.ok
            << ", \"stale_served\": " << pt.stale
            << ", \"shed_or_rejected\": " << pt.shed_or_rejected
            << ", \"deadline_exceeded\": " << pt.deadline_exceeded
            << ", \"other_errors\": " << pt.other_errors
            << ", \"wall_s\": " << pt.wall_s
            << ", \"goodput_rps\": " << pt.goodput_rps
            << ", \"shed_rate\": " << pt.shed_rate
            << ", \"p50_ms\": " << pt.p50_ms
            << ", \"p99_ms\": " << pt.p99_ms << "}"
            << (i + 1 < sweep.size() ? "," : "") << "\n";
      }
      out << "  ]\n}\n";
      const Status s =
          WriteFileAtomic(Env::Default(), overload_json, out.str());
      if (!s.ok()) {
        std::fprintf(stderr, "error writing %s: %s\n", overload_json.c_str(),
                     s.ToString().c_str());
        return 1;
      }
      std::printf("overload sweep written to %s\n", overload_json.c_str());
    }
    return 0;
  }

  serve::RecommendService service(&model, so);
  std::printf("serve_replay: %lld users, %zu warmup + %zu timed events, "
              "%lld candidates, tier=%s\n",
              static_cast<long long>(replayed_users), warm.size(),
              timed.size(), static_cast<long long>(candidates),
              service.incremental() ? (use_tape ? "preprocess" : "kv-cache")
                                    : "fallback");

  for (const auto& ev : warm) service.Append(ev.user, ev.poi, ev.timestamp);

  // Timed phase: append + score per event, draining futures in a sliding
  // window so the queue stays busy without unbounded growth.
  constexpr size_t kWindow = 256;
  std::deque<std::future<serve::ScoreResult>> inflight;
  std::vector<double> latencies;
  latencies.reserve(timed.size());
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& ev : timed) {
    service.Append(ev.user, ev.poi, ev.timestamp);
    inflight.push_back(service.ScoreAsync(ev.user, cands));
    while (inflight.size() > kWindow) {
      latencies.push_back(inflight.front().get().latency_s);
      inflight.pop_front();
    }
  }
  service.Drain();
  while (!inflight.empty()) {
    latencies.push_back(inflight.front().get().latency_s);
    inflight.pop_front();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::sort(latencies.begin(), latencies.end());
  const double qps = wall > 0 ? static_cast<double>(latencies.size()) / wall
                              : 0.0;
  std::printf("timed phase: %.3f s wall, %zu requests\n", wall,
              latencies.size());
  std::printf("throughput:  %.1f req/s\n", qps);
  std::printf("latency:     p50 %.3f ms   p99 %.3f ms   max %.3f ms\n",
              Percentile(latencies, 0.50) * 1e3,
              Percentile(latencies, 0.99) * 1e3,
              latencies.empty() ? 0.0 : latencies.back() * 1e3);
  std::printf(
      "serve counters: appends=%llu requests=%llu incremental=%llu "
      "fallback=%llu evictions=%llu rebuilds=%llu overflows=%llu\n",
      static_cast<unsigned long long>(obs::GetCounter("serve/appends").Get()),
      static_cast<unsigned long long>(obs::GetCounter("serve/requests").Get()),
      static_cast<unsigned long long>(
          obs::GetCounter("serve/incremental_scored").Get()),
      static_cast<unsigned long long>(
          obs::GetCounter("serve/fallback_scored").Get()),
      static_cast<unsigned long long>(
          obs::GetCounter("serve/evictions").Get()),
      static_cast<unsigned long long>(
          obs::GetCounter("serve/cache_rebuilds").Get()),
      static_cast<unsigned long long>(
          obs::GetCounter("serve/overflows").Get()));

  if (!metrics_json.empty()) {
    const Status s = obs::WriteJsonAtomic(Env::Default(), metrics_json);
    if (!s.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", metrics_json.c_str(),
                   s.ToString().c_str());
      return 1;
    }
    std::printf("metrics snapshot written to %s\n", metrics_json.c_str());
  }
  return 0;
}
