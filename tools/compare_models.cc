// compare_models — trains two recommenders on the same data and reports
// whether the difference is statistically meaningful (paired bootstrap over
// per-user ranks), with bootstrap confidence intervals for both.
//
// Usage:
//   compare_models --a stisan --b geosan [--preset gowalla] [--scale 0.3]
//                  [--epochs N] [--data FILE]
// Models: stisan geosan sasrec stan tisasrec bert4rec gru4rec stgn caser
//         pop bpr fpmc prme

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/stisan.h"
#include "data/csv_loader.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/caser.h"
#include "models/geosan.h"
#include "models/gru4rec.h"
#include "models/san_models.h"
#include "models/shallow.h"
#include "models/stan.h"
#include "models/stgn.h"

using namespace stisan;

namespace {

std::unique_ptr<models::SequentialRecommender> MakeModel(
    const std::string& name, const data::Dataset& dataset, int64_t epochs) {
  train::TrainConfig tc;
  tc.epochs = epochs;
  tc.num_negatives = 15;
  tc.knn_neighborhood = 100;

  models::NeuralOptions neural;
  neural.dim = 32;
  neural.train = tc;
  models::SanOptions san;
  san.base = neural;
  san.num_blocks = 2;
  core::StisanOptions st;
  st.poi_dim = 16;
  st.geo.dim = 16;
  st.geo.fourier_dim = 8;
  st.num_blocks = 2;
  st.train = tc;

  if (name == "stisan") return std::make_unique<core::StisanModel>(dataset, st);
  if (name == "geosan") return std::make_unique<models::GeoSanModel>(dataset, st);
  if (name == "sasrec") return std::make_unique<models::SasRecModel>(dataset, san);
  if (name == "tisasrec") {
    return std::make_unique<models::TiSasRecModel>(dataset, san);
  }
  if (name == "bert4rec") {
    return std::make_unique<models::Bert4RecModel>(dataset, san);
  }
  if (name == "stan") {
    models::StanOptions so;
    so.base = neural;
    return std::make_unique<models::StanModel>(dataset, so);
  }
  if (name == "gru4rec") {
    return std::make_unique<models::Gru4RecModel>(dataset, neural);
  }
  if (name == "stgn") return std::make_unique<models::StgnModel>(dataset, neural);
  if (name == "caser") {
    models::CaserOptions co;
    co.base = neural;
    return std::make_unique<models::CaserModel>(dataset, co);
  }
  if (name == "pop") return std::make_unique<models::PopModel>();
  if (name == "bpr") return std::make_unique<models::BprMfModel>();
  if (name == "fpmc") return std::make_unique<models::FpmcLrModel>();
  if (name == "prme") return std::make_unique<models::PrmeGModel>();
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string a_name = "stisan", b_name = "geosan", preset = "gowalla", csv;
  double scale = 0.3;
  int64_t epochs = 12;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--a") == 0) a_name = argv[i + 1];
    if (std::strcmp(argv[i], "--b") == 0) b_name = argv[i + 1];
    if (std::strcmp(argv[i], "--preset") == 0) preset = argv[i + 1];
    if (std::strcmp(argv[i], "--scale") == 0) scale = std::atof(argv[i + 1]);
    if (std::strcmp(argv[i], "--epochs") == 0) epochs = std::atoll(argv[i + 1]);
    if (std::strcmp(argv[i], "--data") == 0) csv = argv[i + 1];
  }

  data::Dataset dataset;
  if (!csv.empty()) {
    auto loaded = data::LoadCsv(csv, csv);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    dataset = data::FilterCold(
        *loaded, {.min_user_checkins = 20, .min_poi_checkins = 10});
  } else {
    data::SyntheticConfig cfg =
        preset == "brightkite"  ? data::BrightkiteLikeConfig(scale)
        : preset == "weeplaces" ? data::WeeplacesLikeConfig(scale)
        : preset == "changchun" ? data::ChangchunLikeConfig(scale)
                                : data::GowallaLikeConfig(scale);
    dataset = data::GenerateSynthetic(cfg);
  }
  std::printf("dataset: %s\n", dataset.Stats().ToString().c_str());

  auto model_a = MakeModel(a_name, dataset, epochs);
  auto model_b = MakeModel(b_name, dataset, epochs);
  if (!model_a || !model_b) {
    std::fprintf(stderr, "error: unknown model name\n");
    return 1;
  }

  data::Split split = data::TrainTestSplit(dataset, {.max_seq_len = 32});
  eval::CandidateGenerator candidates(dataset);
  auto run = [&](models::SequentialRecommender& m) {
    m.Fit(dataset, split.train);
    return eval::Evaluate(
        [&m](const data::EvalInstance& inst,
             const std::vector<int64_t>& cands) {
          return m.Score(inst, cands);
        },
        split.test, candidates, {});
  };
  std::printf("training %s...\n", a_name.c_str());
  auto acc_a = run(*model_a);
  std::printf("training %s...\n", b_name.c_str());
  auto acc_b = run(*model_b);

  Rng rng(17);
  auto ci_a = eval::BootstrapHitRateCi(acc_a.ranks(), 10, 0.95, rng);
  auto ci_b = eval::BootstrapHitRateCi(acc_b.ranks(), 10, 0.95, rng);
  std::printf("\n%-10s HR@5 %.4f  HR@10 %.4f [%.4f, %.4f]  NDCG@10 %.4f\n",
              a_name.c_str(), acc_a.HitRate(5), acc_a.HitRate(10), ci_a.lo,
              ci_a.hi, acc_a.Ndcg(10));
  std::printf("%-10s HR@5 %.4f  HR@10 %.4f [%.4f, %.4f]  NDCG@10 %.4f\n",
              b_name.c_str(), acc_b.HitRate(5), acc_b.HitRate(10), ci_b.lo,
              ci_b.hi, acc_b.Ndcg(10));

  const double p =
      eval::PairedBootstrapPValue(acc_a.ranks(), acc_b.ranks(), 10, rng);
  std::printf(
      "\npaired bootstrap P(%s does not beat %s on HR@10) = %.3f\n"
      "(< 0.05: %s reliably better; > 0.95: %s reliably better;\n"
      " otherwise the difference is within noise on this dataset)\n",
      a_name.c_str(), b_name.c_str(), p, a_name.c_str(), b_name.c_str());
  return 0;
}
