# Empty dependencies file for stisan_eval.
# This may be replaced when dependencies are built.
