file(REMOVE_RECURSE
  "CMakeFiles/stisan_eval.dir/evaluator.cc.o"
  "CMakeFiles/stisan_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/stisan_eval.dir/full_ranking.cc.o"
  "CMakeFiles/stisan_eval.dir/full_ranking.cc.o.d"
  "CMakeFiles/stisan_eval.dir/metrics.cc.o"
  "CMakeFiles/stisan_eval.dir/metrics.cc.o.d"
  "libstisan_eval.a"
  "libstisan_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stisan_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
