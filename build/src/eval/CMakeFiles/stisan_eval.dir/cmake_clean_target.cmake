file(REMOVE_RECURSE
  "libstisan_eval.a"
)
