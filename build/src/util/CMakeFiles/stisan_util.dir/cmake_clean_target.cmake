file(REMOVE_RECURSE
  "libstisan_util.a"
)
