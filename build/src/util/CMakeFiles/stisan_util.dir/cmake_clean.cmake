file(REMOVE_RECURSE
  "CMakeFiles/stisan_util.dir/logging.cc.o"
  "CMakeFiles/stisan_util.dir/logging.cc.o.d"
  "CMakeFiles/stisan_util.dir/rng.cc.o"
  "CMakeFiles/stisan_util.dir/rng.cc.o.d"
  "CMakeFiles/stisan_util.dir/serialize.cc.o"
  "CMakeFiles/stisan_util.dir/serialize.cc.o.d"
  "CMakeFiles/stisan_util.dir/status.cc.o"
  "CMakeFiles/stisan_util.dir/status.cc.o.d"
  "CMakeFiles/stisan_util.dir/string_util.cc.o"
  "CMakeFiles/stisan_util.dir/string_util.cc.o.d"
  "CMakeFiles/stisan_util.dir/thread_pool.cc.o"
  "CMakeFiles/stisan_util.dir/thread_pool.cc.o.d"
  "libstisan_util.a"
  "libstisan_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stisan_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
