# Empty dependencies file for stisan_util.
# This may be replaced when dependencies are built.
