# Empty compiler generated dependencies file for stisan_models.
# This may be replaced when dependencies are built.
