file(REMOVE_RECURSE
  "CMakeFiles/stisan_models.dir/caser.cc.o"
  "CMakeFiles/stisan_models.dir/caser.cc.o.d"
  "CMakeFiles/stisan_models.dir/ensemble.cc.o"
  "CMakeFiles/stisan_models.dir/ensemble.cc.o.d"
  "CMakeFiles/stisan_models.dir/geosan.cc.o"
  "CMakeFiles/stisan_models.dir/geosan.cc.o.d"
  "CMakeFiles/stisan_models.dir/gru4rec.cc.o"
  "CMakeFiles/stisan_models.dir/gru4rec.cc.o.d"
  "CMakeFiles/stisan_models.dir/neural_base.cc.o"
  "CMakeFiles/stisan_models.dir/neural_base.cc.o.d"
  "CMakeFiles/stisan_models.dir/san_models.cc.o"
  "CMakeFiles/stisan_models.dir/san_models.cc.o.d"
  "CMakeFiles/stisan_models.dir/shallow.cc.o"
  "CMakeFiles/stisan_models.dir/shallow.cc.o.d"
  "CMakeFiles/stisan_models.dir/stan.cc.o"
  "CMakeFiles/stisan_models.dir/stan.cc.o.d"
  "CMakeFiles/stisan_models.dir/stgn.cc.o"
  "CMakeFiles/stisan_models.dir/stgn.cc.o.d"
  "libstisan_models.a"
  "libstisan_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stisan_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
