
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/caser.cc" "src/models/CMakeFiles/stisan_models.dir/caser.cc.o" "gcc" "src/models/CMakeFiles/stisan_models.dir/caser.cc.o.d"
  "/root/repo/src/models/ensemble.cc" "src/models/CMakeFiles/stisan_models.dir/ensemble.cc.o" "gcc" "src/models/CMakeFiles/stisan_models.dir/ensemble.cc.o.d"
  "/root/repo/src/models/geosan.cc" "src/models/CMakeFiles/stisan_models.dir/geosan.cc.o" "gcc" "src/models/CMakeFiles/stisan_models.dir/geosan.cc.o.d"
  "/root/repo/src/models/gru4rec.cc" "src/models/CMakeFiles/stisan_models.dir/gru4rec.cc.o" "gcc" "src/models/CMakeFiles/stisan_models.dir/gru4rec.cc.o.d"
  "/root/repo/src/models/neural_base.cc" "src/models/CMakeFiles/stisan_models.dir/neural_base.cc.o" "gcc" "src/models/CMakeFiles/stisan_models.dir/neural_base.cc.o.d"
  "/root/repo/src/models/san_models.cc" "src/models/CMakeFiles/stisan_models.dir/san_models.cc.o" "gcc" "src/models/CMakeFiles/stisan_models.dir/san_models.cc.o.d"
  "/root/repo/src/models/shallow.cc" "src/models/CMakeFiles/stisan_models.dir/shallow.cc.o" "gcc" "src/models/CMakeFiles/stisan_models.dir/shallow.cc.o.d"
  "/root/repo/src/models/stan.cc" "src/models/CMakeFiles/stisan_models.dir/stan.cc.o" "gcc" "src/models/CMakeFiles/stisan_models.dir/stan.cc.o.d"
  "/root/repo/src/models/stgn.cc" "src/models/CMakeFiles/stisan_models.dir/stgn.cc.o" "gcc" "src/models/CMakeFiles/stisan_models.dir/stgn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stisan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/stisan_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/stisan_train.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/stisan_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/stisan_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stisan_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stisan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
