file(REMOVE_RECURSE
  "libstisan_models.a"
)
