
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/early_stopping.cc" "src/train/CMakeFiles/stisan_train.dir/early_stopping.cc.o" "gcc" "src/train/CMakeFiles/stisan_train.dir/early_stopping.cc.o.d"
  "/root/repo/src/train/loss.cc" "src/train/CMakeFiles/stisan_train.dir/loss.cc.o" "gcc" "src/train/CMakeFiles/stisan_train.dir/loss.cc.o.d"
  "/root/repo/src/train/lr_schedule.cc" "src/train/CMakeFiles/stisan_train.dir/lr_schedule.cc.o" "gcc" "src/train/CMakeFiles/stisan_train.dir/lr_schedule.cc.o.d"
  "/root/repo/src/train/negative_sampler.cc" "src/train/CMakeFiles/stisan_train.dir/negative_sampler.cc.o" "gcc" "src/train/CMakeFiles/stisan_train.dir/negative_sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/stisan_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/stisan_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/stisan_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stisan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
