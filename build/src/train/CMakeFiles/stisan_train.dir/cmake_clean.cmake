file(REMOVE_RECURSE
  "CMakeFiles/stisan_train.dir/early_stopping.cc.o"
  "CMakeFiles/stisan_train.dir/early_stopping.cc.o.d"
  "CMakeFiles/stisan_train.dir/loss.cc.o"
  "CMakeFiles/stisan_train.dir/loss.cc.o.d"
  "CMakeFiles/stisan_train.dir/lr_schedule.cc.o"
  "CMakeFiles/stisan_train.dir/lr_schedule.cc.o.d"
  "CMakeFiles/stisan_train.dir/negative_sampler.cc.o"
  "CMakeFiles/stisan_train.dir/negative_sampler.cc.o.d"
  "libstisan_train.a"
  "libstisan_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stisan_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
