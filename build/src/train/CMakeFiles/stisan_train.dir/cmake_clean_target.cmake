file(REMOVE_RECURSE
  "libstisan_train.a"
)
