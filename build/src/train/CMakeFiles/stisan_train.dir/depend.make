# Empty dependencies file for stisan_train.
# This may be replaced when dependencies are built.
