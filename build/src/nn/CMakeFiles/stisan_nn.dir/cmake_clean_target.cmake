file(REMOVE_RECURSE
  "libstisan_nn.a"
)
