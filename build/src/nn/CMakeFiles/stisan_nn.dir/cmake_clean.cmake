file(REMOVE_RECURSE
  "CMakeFiles/stisan_nn.dir/attention.cc.o"
  "CMakeFiles/stisan_nn.dir/attention.cc.o.d"
  "CMakeFiles/stisan_nn.dir/conv.cc.o"
  "CMakeFiles/stisan_nn.dir/conv.cc.o.d"
  "CMakeFiles/stisan_nn.dir/flops.cc.o"
  "CMakeFiles/stisan_nn.dir/flops.cc.o.d"
  "CMakeFiles/stisan_nn.dir/layers.cc.o"
  "CMakeFiles/stisan_nn.dir/layers.cc.o.d"
  "CMakeFiles/stisan_nn.dir/module.cc.o"
  "CMakeFiles/stisan_nn.dir/module.cc.o.d"
  "CMakeFiles/stisan_nn.dir/recurrent.cc.o"
  "CMakeFiles/stisan_nn.dir/recurrent.cc.o.d"
  "libstisan_nn.a"
  "libstisan_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stisan_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
