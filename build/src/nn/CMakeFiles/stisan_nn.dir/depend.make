# Empty dependencies file for stisan_nn.
# This may be replaced when dependencies are built.
