
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cc" "src/nn/CMakeFiles/stisan_nn.dir/attention.cc.o" "gcc" "src/nn/CMakeFiles/stisan_nn.dir/attention.cc.o.d"
  "/root/repo/src/nn/conv.cc" "src/nn/CMakeFiles/stisan_nn.dir/conv.cc.o" "gcc" "src/nn/CMakeFiles/stisan_nn.dir/conv.cc.o.d"
  "/root/repo/src/nn/flops.cc" "src/nn/CMakeFiles/stisan_nn.dir/flops.cc.o" "gcc" "src/nn/CMakeFiles/stisan_nn.dir/flops.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/stisan_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/stisan_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/nn/CMakeFiles/stisan_nn.dir/module.cc.o" "gcc" "src/nn/CMakeFiles/stisan_nn.dir/module.cc.o.d"
  "/root/repo/src/nn/recurrent.cc" "src/nn/CMakeFiles/stisan_nn.dir/recurrent.cc.o" "gcc" "src/nn/CMakeFiles/stisan_nn.dir/recurrent.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/stisan_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stisan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
