file(REMOVE_RECURSE
  "libstisan_tensor.a"
)
