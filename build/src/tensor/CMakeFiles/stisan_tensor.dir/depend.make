# Empty dependencies file for stisan_tensor.
# This may be replaced when dependencies are built.
