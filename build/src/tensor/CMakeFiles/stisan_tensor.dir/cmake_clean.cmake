file(REMOVE_RECURSE
  "CMakeFiles/stisan_tensor.dir/gradcheck.cc.o"
  "CMakeFiles/stisan_tensor.dir/gradcheck.cc.o.d"
  "CMakeFiles/stisan_tensor.dir/ops.cc.o"
  "CMakeFiles/stisan_tensor.dir/ops.cc.o.d"
  "CMakeFiles/stisan_tensor.dir/optimizer.cc.o"
  "CMakeFiles/stisan_tensor.dir/optimizer.cc.o.d"
  "CMakeFiles/stisan_tensor.dir/tensor.cc.o"
  "CMakeFiles/stisan_tensor.dir/tensor.cc.o.d"
  "libstisan_tensor.a"
  "libstisan_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stisan_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
