file(REMOVE_RECURSE
  "CMakeFiles/stisan_geo.dir/geo.cc.o"
  "CMakeFiles/stisan_geo.dir/geo.cc.o.d"
  "CMakeFiles/stisan_geo.dir/geohash.cc.o"
  "CMakeFiles/stisan_geo.dir/geohash.cc.o.d"
  "CMakeFiles/stisan_geo.dir/quadkey.cc.o"
  "CMakeFiles/stisan_geo.dir/quadkey.cc.o.d"
  "CMakeFiles/stisan_geo.dir/spatial_index.cc.o"
  "CMakeFiles/stisan_geo.dir/spatial_index.cc.o.d"
  "libstisan_geo.a"
  "libstisan_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stisan_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
