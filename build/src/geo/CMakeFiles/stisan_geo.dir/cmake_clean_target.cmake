file(REMOVE_RECURSE
  "libstisan_geo.a"
)
