# Empty dependencies file for stisan_geo.
# This may be replaced when dependencies are built.
