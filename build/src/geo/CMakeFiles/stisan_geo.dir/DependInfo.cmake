
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/geo.cc" "src/geo/CMakeFiles/stisan_geo.dir/geo.cc.o" "gcc" "src/geo/CMakeFiles/stisan_geo.dir/geo.cc.o.d"
  "/root/repo/src/geo/geohash.cc" "src/geo/CMakeFiles/stisan_geo.dir/geohash.cc.o" "gcc" "src/geo/CMakeFiles/stisan_geo.dir/geohash.cc.o.d"
  "/root/repo/src/geo/quadkey.cc" "src/geo/CMakeFiles/stisan_geo.dir/quadkey.cc.o" "gcc" "src/geo/CMakeFiles/stisan_geo.dir/quadkey.cc.o.d"
  "/root/repo/src/geo/spatial_index.cc" "src/geo/CMakeFiles/stisan_geo.dir/spatial_index.cc.o" "gcc" "src/geo/CMakeFiles/stisan_geo.dir/spatial_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/stisan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
