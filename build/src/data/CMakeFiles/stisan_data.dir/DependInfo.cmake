
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv_loader.cc" "src/data/CMakeFiles/stisan_data.dir/csv_loader.cc.o" "gcc" "src/data/CMakeFiles/stisan_data.dir/csv_loader.cc.o.d"
  "/root/repo/src/data/preprocess.cc" "src/data/CMakeFiles/stisan_data.dir/preprocess.cc.o" "gcc" "src/data/CMakeFiles/stisan_data.dir/preprocess.cc.o.d"
  "/root/repo/src/data/stats.cc" "src/data/CMakeFiles/stisan_data.dir/stats.cc.o" "gcc" "src/data/CMakeFiles/stisan_data.dir/stats.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/data/CMakeFiles/stisan_data.dir/synthetic.cc.o" "gcc" "src/data/CMakeFiles/stisan_data.dir/synthetic.cc.o.d"
  "/root/repo/src/data/types.cc" "src/data/CMakeFiles/stisan_data.dir/types.cc.o" "gcc" "src/data/CMakeFiles/stisan_data.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/stisan_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stisan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
