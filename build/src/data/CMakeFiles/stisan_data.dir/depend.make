# Empty dependencies file for stisan_data.
# This may be replaced when dependencies are built.
