file(REMOVE_RECURSE
  "libstisan_data.a"
)
