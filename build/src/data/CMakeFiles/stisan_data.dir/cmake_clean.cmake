file(REMOVE_RECURSE
  "CMakeFiles/stisan_data.dir/csv_loader.cc.o"
  "CMakeFiles/stisan_data.dir/csv_loader.cc.o.d"
  "CMakeFiles/stisan_data.dir/preprocess.cc.o"
  "CMakeFiles/stisan_data.dir/preprocess.cc.o.d"
  "CMakeFiles/stisan_data.dir/stats.cc.o"
  "CMakeFiles/stisan_data.dir/stats.cc.o.d"
  "CMakeFiles/stisan_data.dir/synthetic.cc.o"
  "CMakeFiles/stisan_data.dir/synthetic.cc.o.d"
  "CMakeFiles/stisan_data.dir/types.cc.o"
  "CMakeFiles/stisan_data.dir/types.cc.o.d"
  "libstisan_data.a"
  "libstisan_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stisan_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
