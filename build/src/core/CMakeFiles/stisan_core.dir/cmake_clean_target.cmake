file(REMOVE_RECURSE
  "libstisan_core.a"
)
