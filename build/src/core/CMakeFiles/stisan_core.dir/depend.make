# Empty dependencies file for stisan_core.
# This may be replaced when dependencies are built.
