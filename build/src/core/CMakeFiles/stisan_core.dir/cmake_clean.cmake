file(REMOVE_RECURSE
  "CMakeFiles/stisan_core.dir/explain.cc.o"
  "CMakeFiles/stisan_core.dir/explain.cc.o.d"
  "CMakeFiles/stisan_core.dir/geo_encoder.cc.o"
  "CMakeFiles/stisan_core.dir/geo_encoder.cc.o.d"
  "CMakeFiles/stisan_core.dir/iaab.cc.o"
  "CMakeFiles/stisan_core.dir/iaab.cc.o.d"
  "CMakeFiles/stisan_core.dir/relation.cc.o"
  "CMakeFiles/stisan_core.dir/relation.cc.o.d"
  "CMakeFiles/stisan_core.dir/stisan.cc.o"
  "CMakeFiles/stisan_core.dir/stisan.cc.o.d"
  "CMakeFiles/stisan_core.dir/taad.cc.o"
  "CMakeFiles/stisan_core.dir/taad.cc.o.d"
  "CMakeFiles/stisan_core.dir/tape.cc.o"
  "CMakeFiles/stisan_core.dir/tape.cc.o.d"
  "libstisan_core.a"
  "libstisan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stisan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
