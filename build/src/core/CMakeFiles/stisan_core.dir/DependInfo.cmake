
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/explain.cc" "src/core/CMakeFiles/stisan_core.dir/explain.cc.o" "gcc" "src/core/CMakeFiles/stisan_core.dir/explain.cc.o.d"
  "/root/repo/src/core/geo_encoder.cc" "src/core/CMakeFiles/stisan_core.dir/geo_encoder.cc.o" "gcc" "src/core/CMakeFiles/stisan_core.dir/geo_encoder.cc.o.d"
  "/root/repo/src/core/iaab.cc" "src/core/CMakeFiles/stisan_core.dir/iaab.cc.o" "gcc" "src/core/CMakeFiles/stisan_core.dir/iaab.cc.o.d"
  "/root/repo/src/core/relation.cc" "src/core/CMakeFiles/stisan_core.dir/relation.cc.o" "gcc" "src/core/CMakeFiles/stisan_core.dir/relation.cc.o.d"
  "/root/repo/src/core/stisan.cc" "src/core/CMakeFiles/stisan_core.dir/stisan.cc.o" "gcc" "src/core/CMakeFiles/stisan_core.dir/stisan.cc.o.d"
  "/root/repo/src/core/taad.cc" "src/core/CMakeFiles/stisan_core.dir/taad.cc.o" "gcc" "src/core/CMakeFiles/stisan_core.dir/taad.cc.o.d"
  "/root/repo/src/core/tape.cc" "src/core/CMakeFiles/stisan_core.dir/tape.cc.o" "gcc" "src/core/CMakeFiles/stisan_core.dir/tape.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/stisan_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/stisan_train.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/stisan_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/stisan_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stisan_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stisan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
