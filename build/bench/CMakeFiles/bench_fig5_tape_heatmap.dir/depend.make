# Empty dependencies file for bench_fig5_tape_heatmap.
# This may be replaced when dependencies are built.
