# Empty compiler generated dependencies file for bench_fig2_spatial_distribution.
# This may be replaced when dependencies are built.
