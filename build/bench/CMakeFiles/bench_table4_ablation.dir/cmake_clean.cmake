file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_ablation.dir/bench_table4_ablation.cpp.o"
  "CMakeFiles/bench_table4_ablation.dir/bench_table4_ablation.cpp.o.d"
  "bench_table4_ablation"
  "bench_table4_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
