file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_sparsity.dir/bench_fig8_sparsity.cpp.o"
  "CMakeFiles/bench_fig8_sparsity.dir/bench_fig8_sparsity.cpp.o.d"
  "bench_fig8_sparsity"
  "bench_fig8_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
