file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_tape_extensibility.dir/bench_fig4_tape_extensibility.cpp.o"
  "CMakeFiles/bench_fig4_tape_extensibility.dir/bench_fig4_tape_extensibility.cpp.o.d"
  "bench_fig4_tape_extensibility"
  "bench_fig4_tape_extensibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_tape_extensibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
