# Empty dependencies file for bench_fig4_tape_extensibility.
# This may be replaced when dependencies are built.
