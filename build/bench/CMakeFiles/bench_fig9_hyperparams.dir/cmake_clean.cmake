file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_hyperparams.dir/bench_fig9_hyperparams.cpp.o"
  "CMakeFiles/bench_fig9_hyperparams.dir/bench_fig9_hyperparams.cpp.o.d"
  "bench_fig9_hyperparams"
  "bench_fig9_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
