# Empty dependencies file for bench_fig9_hyperparams.
# This may be replaced when dependencies are built.
