file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_attention.dir/bench_micro_attention.cpp.o"
  "CMakeFiles/bench_micro_attention.dir/bench_micro_attention.cpp.o.d"
  "bench_micro_attention"
  "bench_micro_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
