# Empty compiler generated dependencies file for bench_micro_attention.
# This may be replaced when dependencies are built.
