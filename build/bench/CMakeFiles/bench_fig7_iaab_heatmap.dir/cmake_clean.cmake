file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_iaab_heatmap.dir/bench_fig7_iaab_heatmap.cpp.o"
  "CMakeFiles/bench_fig7_iaab_heatmap.dir/bench_fig7_iaab_heatmap.cpp.o.d"
  "bench_fig7_iaab_heatmap"
  "bench_fig7_iaab_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_iaab_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
