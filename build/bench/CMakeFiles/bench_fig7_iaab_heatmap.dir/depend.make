# Empty dependencies file for bench_fig7_iaab_heatmap.
# This may be replaced when dependencies are built.
