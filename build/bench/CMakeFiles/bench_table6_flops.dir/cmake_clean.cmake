file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_flops.dir/bench_table6_flops.cpp.o"
  "CMakeFiles/bench_table6_flops.dir/bench_table6_flops.cpp.o.d"
  "bench_table6_flops"
  "bench_table6_flops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_flops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
