# Empty dependencies file for bench_table2_dataset_stats.
# This may be replaced when dependencies are built.
