file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_geo.dir/bench_micro_geo.cpp.o"
  "CMakeFiles/bench_micro_geo.dir/bench_micro_geo.cpp.o.d"
  "bench_micro_geo"
  "bench_micro_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
