# Empty compiler generated dependencies file for bench_micro_geo.
# This may be replaced when dependencies are built.
