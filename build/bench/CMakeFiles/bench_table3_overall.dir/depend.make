# Empty dependencies file for bench_table3_overall.
# This may be replaced when dependencies are built.
