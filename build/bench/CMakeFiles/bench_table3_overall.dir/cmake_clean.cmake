file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_overall.dir/bench_table3_overall.cpp.o"
  "CMakeFiles/bench_table3_overall.dir/bench_table3_overall.cpp.o.d"
  "bench_table3_overall"
  "bench_table3_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
