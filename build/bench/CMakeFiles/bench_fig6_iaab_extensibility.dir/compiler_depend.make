# Empty compiler generated dependencies file for bench_fig6_iaab_extensibility.
# This may be replaced when dependencies are built.
