
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_iaab_extensibility.cpp" "bench/CMakeFiles/bench_fig6_iaab_extensibility.dir/bench_fig6_iaab_extensibility.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6_iaab_extensibility.dir/bench_fig6_iaab_extensibility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/stisan_models.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stisan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/stisan_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/stisan_train.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/stisan_data.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/stisan_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/stisan_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/stisan_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stisan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
