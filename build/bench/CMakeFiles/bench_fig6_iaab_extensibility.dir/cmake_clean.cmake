file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_iaab_extensibility.dir/bench_fig6_iaab_extensibility.cpp.o"
  "CMakeFiles/bench_fig6_iaab_extensibility.dir/bench_fig6_iaab_extensibility.cpp.o.d"
  "bench_fig6_iaab_extensibility"
  "bench_fig6_iaab_extensibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_iaab_extensibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
