file(REMOVE_RECURSE
  "CMakeFiles/attention_viz.dir/attention_viz.cpp.o"
  "CMakeFiles/attention_viz.dir/attention_viz.cpp.o.d"
  "attention_viz"
  "attention_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attention_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
