# Empty compiler generated dependencies file for attention_viz.
# This may be replaced when dependencies are built.
