# Empty dependencies file for city_explorer.
# This may be replaced when dependencies are built.
