file(REMOVE_RECURSE
  "CMakeFiles/city_explorer.dir/city_explorer.cpp.o"
  "CMakeFiles/city_explorer.dir/city_explorer.cpp.o.d"
  "city_explorer"
  "city_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
