file(REMOVE_RECURSE
  "CMakeFiles/paper_figure1.dir/paper_figure1.cpp.o"
  "CMakeFiles/paper_figure1.dir/paper_figure1.cpp.o.d"
  "paper_figure1"
  "paper_figure1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_figure1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
