# Empty dependencies file for paper_figure1.
# This may be replaced when dependencies are built.
