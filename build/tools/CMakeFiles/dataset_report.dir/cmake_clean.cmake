file(REMOVE_RECURSE
  "CMakeFiles/dataset_report.dir/dataset_report.cc.o"
  "CMakeFiles/dataset_report.dir/dataset_report.cc.o.d"
  "dataset_report"
  "dataset_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
