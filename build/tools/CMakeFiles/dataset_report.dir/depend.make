# Empty dependencies file for dataset_report.
# This may be replaced when dependencies are built.
