file(REMOVE_RECURSE
  "CMakeFiles/stisan_cli.dir/stisan_cli.cc.o"
  "CMakeFiles/stisan_cli.dir/stisan_cli.cc.o.d"
  "stisan_cli"
  "stisan_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stisan_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
