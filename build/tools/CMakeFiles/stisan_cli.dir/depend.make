# Empty dependencies file for stisan_cli.
# This may be replaced when dependencies are built.
