file(REMOVE_RECURSE
  "CMakeFiles/ops_gradcheck_test.dir/ops_gradcheck_test.cpp.o"
  "CMakeFiles/ops_gradcheck_test.dir/ops_gradcheck_test.cpp.o.d"
  "ops_gradcheck_test"
  "ops_gradcheck_test.pdb"
  "ops_gradcheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_gradcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
