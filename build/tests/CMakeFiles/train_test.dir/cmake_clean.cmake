file(REMOVE_RECURSE
  "CMakeFiles/train_test.dir/train_test.cpp.o"
  "CMakeFiles/train_test.dir/train_test.cpp.o.d"
  "train_test"
  "train_test.pdb"
  "train_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
