
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ops_property_test.cpp" "tests/CMakeFiles/ops_property_test.dir/ops_property_test.cpp.o" "gcc" "tests/CMakeFiles/ops_property_test.dir/ops_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/stisan_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stisan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
