file(REMOVE_RECURSE
  "CMakeFiles/infra_test.dir/infra_test.cpp.o"
  "CMakeFiles/infra_test.dir/infra_test.cpp.o.d"
  "infra_test"
  "infra_test.pdb"
  "infra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
