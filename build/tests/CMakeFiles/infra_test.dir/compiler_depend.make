# Empty compiler generated dependencies file for infra_test.
# This may be replaced when dependencies are built.
