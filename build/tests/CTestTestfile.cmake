# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/ops_gradcheck_test[1]_include.cmake")
include("/root/repo/build/tests/ops_property_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/train_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/infra_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/behavior_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
add_test(cli_workflow "/usr/bin/cmake" "-DCLI=/root/repo/build/tools/stisan_cli" "-DWORKDIR=/root/repo/build/cli_test" "-P" "/root/repo/tests/cli_workflow_test.cmake")
set_tests_properties(cli_workflow PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;28;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dataset_report_smoke "/root/repo/build/tools/dataset_report" "--preset" "changchun" "--scale" "0.08")
set_tests_properties(dataset_report_smoke PROPERTIES  PASS_REGULAR_EXPRESSION "popularity gini" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;37;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(compare_models_smoke "/root/repo/build/tools/compare_models" "--a" "pop" "--b" "bpr" "--scale" "0.08" "--epochs" "1")
set_tests_properties(compare_models_smoke PROPERTIES  PASS_REGULAR_EXPRESSION "paired bootstrap" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;41;add_test;/root/repo/tests/CMakeLists.txt;0;")
