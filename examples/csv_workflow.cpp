// CSV workflow: the full production path on a check-in dump — load, filter,
// split with a held-out validation set, train with early stopping, save a
// checkpoint, reload it, and report test metrics with a bootstrap CI.
//
// Usage: csv_workflow [checkins.csv]
// Without an argument a synthetic dump is generated and used.

#include <cstdio>
#include <string>

#include "core/stisan.h"
#include "data/csv_loader.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "train/early_stopping.h"
#include "util/logging.h"

using namespace stisan;

namespace {

eval::MetricAccumulator Evaluate(core::StisanModel& model,
                                 const std::vector<data::EvalInstance>& test,
                                 const eval::CandidateGenerator& candidates) {
  return eval::Evaluate(
      [&model](const data::EvalInstance& inst,
               const std::vector<int64_t>& cands) {
        return model.Score(inst, cands);
      },
      test, candidates, {});
}

// Scores validation windows as pseudo test instances (last visit held out).
std::vector<data::EvalInstance> ToValidationInstances(
    const std::vector<data::TrainWindow>& windows) {
  std::vector<data::EvalInstance> out;
  for (const auto& w : windows) {
    const int64_t n = static_cast<int64_t>(w.poi.size()) - 1;
    data::EvalInstance inst;
    inst.user = w.user;
    inst.poi.assign(w.poi.begin(), w.poi.end() - 1);
    inst.t.assign(w.t.begin(), w.t.end() - 1);
    inst.first_real = std::min<int64_t>(w.first_real, n - 1);
    inst.target = w.poi.back();
    inst.target_time = w.t.back();
    for (int64_t i = inst.first_real; i < n; ++i) {
      inst.visited.push_back(inst.poi[static_cast<size_t>(i)]);
    }
    out.push_back(std::move(inst));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // ---- Load (or synthesise) a check-in dump. ----
  std::string path = argc > 1 ? argv[1] : "";
  data::Dataset dataset;
  if (path.empty()) {
    path = "/tmp/stisan_workflow.csv";
    auto ds = data::GenerateSynthetic(data::GowallaLikeConfig(0.3));
    STISAN_CHECK(data::SaveCsv(ds, path).ok());
    std::printf("no CSV given; wrote a synthetic one to %s\n", path.c_str());
  }
  auto loaded = data::LoadCsv(path, path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  dataset = data::FilterCold(*loaded,
                             {.min_user_checkins = 20, .min_poi_checkins = 5});
  std::printf("dataset: %s\n", dataset.Stats().ToString().c_str());

  // ---- Split train/validation/test. ----
  data::Split split = data::TrainTestSplit(dataset, {.max_seq_len = 32});
  Rng rng(99);
  auto val_split = train::SplitValidation(split.train, 0.15, rng);
  auto val_instances = ToValidationInstances(val_split.validation);
  std::printf("windows: %zu train, %zu validation; %zu test users\n",
              val_split.train.size(), val_split.validation.size(),
              split.test.size());

  eval::CandidateGenerator candidates(dataset);

  // ---- Train with early stopping on validation HR@10. ----
  // The per-epoch callback evaluates on the held-out windows, checkpoints
  // improvements, and stops after 2 non-improving epochs; the Adam state
  // persists across epochs since everything happens inside one Fit call.
  core::StisanOptions opts;
  opts.train.epochs = 12;
  opts.train.num_negatives = 10;
  opts.train.knn_neighborhood = 100;
  const std::string ckpt = "/tmp/stisan_workflow_best.bin";

  train::EarlyStopping stopper(/*patience=*/2);
  core::StisanModel* training_model = nullptr;
  auto options_with_callback = opts;
  options_with_callback.train.on_epoch =
      [&](const train::EpochStats& stats) {
        auto val = Evaluate(*training_model, val_instances, candidates);
        std::printf("epoch %2lld: loss %.4f, validation HR@10 %.4f\n",
                    static_cast<long long>(stats.epoch + 1), stats.loss,
                    val.HitRate(10));
        if (val.HitRate(10) > stopper.best_metric() + 1e-4) {
          STISAN_CHECK(training_model->SaveParameters(ckpt).ok());
        }
        if (stopper.ShouldStop(val.HitRate(10))) {
          std::printf("early stop: best epoch %lld (HR@10 %.4f)\n",
                      static_cast<long long>(stopper.best_epoch() + 1),
                      stopper.best_metric());
          return false;
        }
        return true;
      };
  // Note: the callback must be set before model construction consumes the
  // options; StisanModel copies its options, so rebuild the model with the
  // callback attached.
  core::StisanModel trained(dataset, options_with_callback);
  training_model = &trained;
  trained.Fit(dataset, val_split.train);

  // ---- Restore the best checkpoint and report test metrics. ----
  core::StisanModel best(dataset, opts);
  STISAN_CHECK(best.LoadParameters(ckpt).ok());
  auto test = Evaluate(best, split.test, candidates);
  std::printf("\ntest: HR@5 %.4f  NDCG@5 %.4f  HR@10 %.4f  NDCG@10 %.4f  "
              "MRR %.4f\n",
              test.HitRate(5), test.Ndcg(5), test.HitRate(10), test.Ndcg(10),
              test.MeanReciprocalRank());
  Rng boot_rng(7);
  auto ci = eval::BootstrapHitRateCi(test.ranks(), 10, 0.95, boot_rng);
  std::printf("HR@10 95%% CI over %lld users: [%.4f, %.4f]\n",
              static_cast<long long>(test.count()), ci.lo, ci.hi);
  return 0;
}
