// Reproduces the paper's motivating example (Fig. 1): two users share the
// exact same POI sequence "Hotel -> Park -> Restaurant -> Office -> Market"
// but with different time intervals, and should therefore receive
// different recommendations. An interval-blind model scores both users
// identically; STiSAN (through TAPE and the relation matrix) does not.

#include <cmath>
#include <cstdio>

#include "core/stisan.h"
#include "core/tape.h"
#include "data/preprocess.h"
#include "data/synthetic.h"

using namespace stisan;

int main() {
  // A small city to give the model a POI universe and training data.
  auto cfg = data::GowallaLikeConfig(0.15);
  data::Dataset dataset = data::GenerateSynthetic(cfg);
  data::Split split = data::TrainTestSplit(dataset, {.max_seq_len = 8});

  core::StisanOptions opts;
  opts.num_blocks = 1;
  opts.train.epochs = 3;
  opts.train.num_negatives = 8;
  opts.train.knn_neighborhood = 60;
  core::StisanModel stisan(dataset, opts);

  auto blind_opts = opts;
  blind_opts.use_tape = false;  // vanilla PE: no interval information
  blind_opts.attention_mode = core::AttentionMode::kVanilla;
  core::StisanModel blind(dataset, blind_opts);

  std::printf("training STiSAN and an interval-blind variant...\n");
  stisan.Fit(dataset, split.train);
  blind.Fit(dataset, split.train);

  // ---- The Fig. 1 construction. ----
  // Five shared POIs (hotel, park, restaurant, office, market) and two
  // users whose check-in CLOCKS differ: user 1 has a long afternoon gap
  // (7:00 7:30 11:30 14:30 18:00), user 2 checks in steadily
  // (9:00 10:30 11:30 13:00 16:30), as in the figure.
  const std::vector<int64_t> shared_pois = {5, 12, 31, 44, 2};
  const double day = 86400.0;
  auto at_hours = [&](std::initializer_list<double> hours) {
    std::vector<double> t;
    for (double h : hours) t.push_back(day * 100 + h * 3600.0);
    return t;
  };

  data::EvalInstance user1;
  user1.user = 0;
  user1.poi = shared_pois;
  user1.t = at_hours({7.0, 7.5, 11.5, 14.5, 18.0});
  user1.first_real = 0;
  user1.target_time = user1.t.back() + 3600.0;

  data::EvalInstance user2 = user1;
  user2.user = 1;
  user2.t = at_hours({9.0, 10.5, 11.5, 13.0, 16.5});
  user2.target_time = user2.t.back() + 3600.0;

  // TAPE positions diverge while the POI order is identical.
  auto p1 = core::TimeAwarePositions(user1.t);
  auto p2 = core::TimeAwarePositions(user2.t);
  std::printf("\nshared POI sequence: ");
  for (int64_t p : shared_pois) std::printf("%lld ", (long long)p);
  std::printf("\nTAPE positions user 1: ");
  for (double p : p1) std::printf("%.2f ", p);
  std::printf("\nTAPE positions user 2: ");
  for (double p : p2) std::printf("%.2f ", p);

  // Score a common candidate set with both models.
  std::vector<int64_t> candidates;
  for (int64_t poi = 1; poi <= 20; ++poi) candidates.push_back(poi);

  auto l1_diff = [](const std::vector<float>& a,
                    const std::vector<float>& b) {
    float d = 0;
    for (size_t i = 0; i < a.size(); ++i) d += std::fabs(a[i] - b[i]);
    return d;
  };
  const float stisan_diff = l1_diff(stisan.Score(user1, candidates),
                                    stisan.Score(user2, candidates));
  const float blind_diff = l1_diff(blind.Score(user1, candidates),
                                   blind.Score(user2, candidates));

  std::printf(
      "\n\nL1 difference between the two users' candidate scores:\n"
      "  STiSAN (interval-aware):   %.4f\n"
      "  interval-blind variant:    %.4f\n\n"
      "paper (Fig. 1): the same POI sequence with different time intervals\n"
      "must lead to different recommendations — only the interval-aware\n"
      "model can tell the two users apart.\n",
      stisan_diff, blind_diff);
  return 0;
}
