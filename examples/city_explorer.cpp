// City explorer: a Changchun-style transportation scenario (the paper's
// real-world dataset). Simulates commuters over a small POI network, trains
// STiSAN, and explains one recommendation through the model's internals:
// the TAPE positions of the user's history and the IAAB attention weights.

#include <algorithm>
#include <cstdio>

#include "core/explain.h"
#include "core/stisan.h"
#include "core/tape.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"

using namespace stisan;

namespace {

void PrintHistoryTail(const data::Dataset& dataset,
                      const data::EvalInstance& inst, int64_t tail) {
  const int64_t n = static_cast<int64_t>(inst.poi.size());
  std::printf("last %lld check-ins (user %lld):\n",
              static_cast<long long>(tail), static_cast<long long>(inst.user));
  for (int64_t i = std::max(inst.first_real, n - tail); i < n; ++i) {
    const int64_t poi = inst.poi[static_cast<size_t>(i)];
    const double hours_ago =
        (inst.t.back() - inst.t[static_cast<size_t>(i)]) / 3600.0;
    std::printf("  step %2lld: POI %-4lld at %s  (%.1f h before last)\n",
                static_cast<long long>(i), static_cast<long long>(poi),
                geo::ToString(dataset.poi_location(poi)).c_str(), hours_ago);
  }
}

}  // namespace

int main() {
  // Changchun-like: many commuters over a compact transportation network.
  auto cfg = data::ChangchunLikeConfig(/*scale=*/0.35);
  data::Dataset dataset = data::GenerateSynthetic(cfg);
  std::printf("city: %s\n", dataset.Stats().ToString().c_str());

  data::Split split = data::TrainTestSplit(dataset, {.max_seq_len = 32});
  core::StisanOptions options;
  options.poi_dim = 24;
  options.geo.dim = 8;
  options.num_blocks = 2;
  options.train.epochs = 6;
  options.train.num_negatives = 8;
  options.train.knn_neighborhood = 60;
  core::StisanModel model(dataset, options);
  model.Fit(dataset, split.train);
  std::printf("trained: final epoch loss %.4f\n\n", model.last_epoch_loss());

  // Pick a rider and explain the next-stop recommendation.
  const auto& inst = split.test.front();
  PrintHistoryTail(dataset, inst, 6);

  // TAPE positions: show how irregular gaps stretch the positional axis.
  auto positions = core::TimeAwarePositions(inst.t, inst.first_real);
  std::printf("\nTAPE positions of the last 6 steps (vs integer 1,2,3,...):\n  ");
  const int64_t n = static_cast<int64_t>(inst.poi.size());
  for (int64_t i = std::max(inst.first_real, n - 6); i < n; ++i) {
    std::printf("%.2f ", positions[static_cast<size_t>(i)]);
  }
  std::printf("\n");

  // IAAB attention over the history for the final prediction step.
  Tensor map = model.AverageAttentionMap(inst.poi, inst.t, inst.first_real);
  std::printf("\nIAAB attention of the final step over its history "
              "(top-5 attended steps):\n");
  std::vector<std::pair<float, int64_t>> weights;
  for (int64_t j = inst.first_real; j < n; ++j) {
    weights.emplace_back(map.at({n - 1, j}), j);
  }
  std::sort(weights.rbegin(), weights.rend());
  for (int k = 0; k < 5 && k < static_cast<int>(weights.size()); ++k) {
    const auto [w, j] = weights[static_cast<size_t>(k)];
    std::printf("  step %2lld (POI %-4lld): weight %.3f\n",
                static_cast<long long>(j),
                static_cast<long long>(inst.poi[static_cast<size_t>(j)]), w);
  }

  // The actual Top-K.
  eval::CandidateGenerator candidates(dataset);
  auto cands = candidates.Candidates(inst, 100);
  auto scores = model.Score(inst, cands);
  std::vector<size_t> order(cands.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  std::printf("\nTop-5 next stops (ground truth POI %lld):\n",
              static_cast<long long>(inst.target));
  for (int k = 0; k < 5; ++k) {
    const int64_t poi = cands[order[static_cast<size_t>(k)]];
    std::printf("  %d. POI %-4lld score %.3f%s\n", k + 1,
                static_cast<long long>(poi),
                scores[order[static_cast<size_t>(k)]],
                poi == inst.target ? "  <= ground truth" : "");
  }

  // Why the top pick? The explanation API surfaces the attended history
  // steps with their spatio-temporal intervals.
  std::printf("\nwhy the top recommendation?\n%s",
              core::FormatExplanation(
                  core::ExplainRecommendation(
                      model, dataset, inst, cands[order[0]], 4))
                  .c_str());
  return 0;
}
