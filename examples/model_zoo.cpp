// Model zoo: trains a selection of recommenders on one synthetic dataset
// and prints a leaderboard, exercising the full public model API.
//
// Usage: model_zoo [--fast] [--all]
//   --fast  tiny training budget (CI smoke)
//   --all   include every baseline (default: the headline subset)

#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "core/stisan.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/caser.h"
#include "models/geosan.h"
#include "models/gru4rec.h"
#include "models/san_models.h"
#include "models/shallow.h"
#include "models/stan.h"
#include "models/stgn.h"
#include "util/stopwatch.h"

using namespace stisan;

int main(int argc, char** argv) {
  bool fast = false;
  bool all = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) fast = true;
    if (std::strcmp(argv[i], "--all") == 0) all = true;
  }

  auto cfg = data::GowallaLikeConfig(fast ? 0.15 : 0.5);
  data::Dataset dataset = data::GenerateSynthetic(cfg);
  data::Split split = data::TrainTestSplit(dataset, {.max_seq_len = 32});
  eval::CandidateGenerator candidates(dataset);
  std::printf("dataset: %s\n", dataset.Stats().ToString().c_str());
  std::printf("train windows: %zu, test instances: %zu\n\n",
              split.train.size(), split.test.size());

  train::TrainConfig tc;
  tc.epochs = fast ? 2 : 8;
  tc.num_negatives = 8;
  tc.knn_neighborhood = 100;

  models::NeuralOptions neural;
  neural.dim = 32;
  neural.dropout = 0.2f;
  neural.train = tc;

  models::SanOptions san;
  san.base = neural;
  san.num_blocks = 2;

  core::StisanOptions stisan_opts;
  stisan_opts.poi_dim = 24;
  stisan_opts.geo.dim = 8;
  stisan_opts.num_blocks = 2;
  stisan_opts.train = tc;

  using Factory =
      std::pair<const char*, std::function<std::unique_ptr<
                                 models::SequentialRecommender>()>>;
  std::vector<Factory> factories;
  factories.emplace_back("POP", [] { return std::make_unique<models::PopModel>(); });
  if (all) {
    factories.emplace_back("BPR", [] {
      return std::make_unique<models::BprMfModel>();
    });
    factories.emplace_back("FPMC-LR", [] {
      return std::make_unique<models::FpmcLrModel>();
    });
    factories.emplace_back("PRME-G", [] {
      return std::make_unique<models::PrmeGModel>();
    });
    factories.emplace_back("GRU4Rec", [&] {
      return std::make_unique<models::Gru4RecModel>(dataset, neural);
    });
    factories.emplace_back("STGN", [&] {
      return std::make_unique<models::StgnModel>(dataset, neural);
    });
    factories.emplace_back("Caser", [&] {
      models::CaserOptions co;
      co.base = neural;
      co.base.train.max_train_windows = fast ? 20 : 150;
      return std::make_unique<models::CaserModel>(dataset, co);
    });
    factories.emplace_back("Bert4Rec", [&] {
      return std::make_unique<models::Bert4RecModel>(dataset, san);
    });
    factories.emplace_back("TiSASRec", [&] {
      return std::make_unique<models::TiSasRecModel>(dataset, san);
    });
  }
  factories.emplace_back("SASRec", [&] {
    return std::make_unique<models::SasRecModel>(dataset, san);
  });
  factories.emplace_back("STAN", [&] {
    models::StanOptions so;
    so.base = neural;
    return std::make_unique<models::StanModel>(dataset, so);
  });
  factories.emplace_back("GeoSAN", [&] {
    return std::make_unique<models::GeoSanModel>(dataset, stisan_opts);
  });
  factories.emplace_back("STiSAN", [&] {
    return std::make_unique<core::StisanModel>(dataset, stisan_opts);
  });

  std::printf("%-10s %8s %8s %8s %8s %9s\n", "model", "HR@5", "NDCG@5",
              "HR@10", "NDCG@10", "train(s)");
  for (auto& [label, make] : factories) {
    auto model = make();
    Stopwatch watch;
    model->Fit(dataset, split.train);
    const double train_s = watch.ElapsedSeconds();
    auto acc = eval::Evaluate(
        [&](const data::EvalInstance& inst,
            const std::vector<int64_t>& cands) {
          return model->Score(inst, cands);
        },
        split.test, candidates, {});
    std::printf("%-10s %8.4f %8.4f %8.4f %8.4f %9.1f\n", label,
                acc.HitRate(5), acc.Ndcg(5), acc.HitRate(10), acc.Ndcg(10),
                train_s);
    std::fflush(stdout);
  }
  return 0;
}
