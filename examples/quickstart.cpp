// Quickstart: generate a synthetic city, train STiSAN, evaluate it against
// the popularity baseline, and print Top-K recommendations for one user.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/stisan.h"
#include "data/preprocess.h"
#include "data/synthetic.h"
#include "eval/evaluator.h"
#include "models/shallow.h"
#include "util/logging.h"
#include "util/stopwatch.h"

using namespace stisan;

int main() {
  // ---- 1. Data: a synthetic LBSN city (see src/data/synthetic.h). ----
  data::SyntheticConfig city = data::GowallaLikeConfig(/*scale=*/0.5);
  city.name = "quickstart-city";
  data::Dataset dataset = data::GenerateSynthetic(city);
  std::printf("dataset: %s\n", dataset.Stats().ToString().c_str());

  // ---- 2. Split: last unvisited POI per user is the test target. ----
  data::Split split = data::TrainTestSplit(dataset, {.max_seq_len = 32});
  std::printf("train windows: %zu, test instances: %zu\n",
              split.train.size(), split.test.size());

  // ---- 3. Model: STiSAN with TAPE + IAAB + TAAD. ----
  core::StisanOptions options;
  options.poi_dim = 24;
  options.geo.dim = 8;
  options.num_blocks = 2;
  options.train.epochs = 5;
  options.train.num_negatives = 8;
  options.train.knn_neighborhood = 100;
  options.train.verbose = true;
  core::StisanModel model(dataset, options);

  Stopwatch watch;
  model.Fit(dataset, split.train);
  std::printf("trained in %.1fs (final loss %.4f)\n", watch.ElapsedSeconds(),
              model.last_epoch_loss());

  // ---- 4. Evaluate: HR/NDCG over the nearest-100 candidate protocol. ----
  eval::CandidateGenerator candidates(dataset);
  models::PopModel pop;
  pop.Fit(dataset, split.train);

  auto score_with = [&](models::SequentialRecommender& m) {
    return eval::Evaluate(
        [&m](const data::EvalInstance& inst,
             const std::vector<int64_t>& cands) { return m.Score(inst, cands); },
        split.test, candidates, {});
  };
  auto stisan_metrics = score_with(model);
  auto pop_metrics = score_with(pop);
  std::printf("\n%-8s HR@5=%.4f NDCG@5=%.4f HR@10=%.4f NDCG@10=%.4f\n",
              "STiSAN", stisan_metrics.HitRate(5), stisan_metrics.Ndcg(5),
              stisan_metrics.HitRate(10), stisan_metrics.Ndcg(10));
  std::printf("%-8s HR@5=%.4f NDCG@5=%.4f HR@10=%.4f NDCG@10=%.4f\n", "POP",
              pop_metrics.HitRate(5), pop_metrics.Ndcg(5),
              pop_metrics.HitRate(10), pop_metrics.Ndcg(10));

  // ---- 5. Top-K for one user. ----
  const auto& inst = split.test.front();
  auto cands = candidates.Candidates(inst, 100);
  auto scores = model.Score(inst, cands);
  std::vector<size_t> order(cands.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  std::printf("\nTop-5 recommendations for user %lld (ground truth: POI %lld)\n",
              static_cast<long long>(inst.user),
              static_cast<long long>(inst.target));
  for (int k = 0; k < 5 && k < static_cast<int>(order.size()); ++k) {
    const int64_t poi = cands[order[static_cast<size_t>(k)]];
    const auto& g = dataset.poi_location(poi);
    std::printf("  %d. POI %-5lld score=%.3f at %s%s\n", k + 1,
                static_cast<long long>(poi),
                scores[order[static_cast<size_t>(k)]],
                geo::ToString(g).c_str(), poi == inst.target ? "  <= hit" : "");
  }
  return 0;
}
