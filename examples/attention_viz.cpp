// Attention visualisation: dumps the average attention heat-maps of a
// vanilla SAN versus STiSAN's IAAB for one user (ASCII art + CSV), the
// same qualitative evidence the paper shows in Fig. 5 and Fig. 7.
//
// Usage: attention_viz [output.csv]

#include <cstdio>
#include <string>

#include "core/stisan.h"
#include "data/preprocess.h"
#include "data/synthetic.h"

using namespace stisan;

namespace {

// 10-level ASCII shading.
char Shade(float v, float max_v) {
  static const char* kLevels = " .:-=+*#%@";
  if (max_v <= 0) return ' ';
  int idx = static_cast<int>(9.0f * v / max_v + 0.5f);
  if (idx < 0) idx = 0;
  if (idx > 9) idx = 9;
  return kLevels[idx];
}

void PrintHeatmap(const char* title, const Tensor& map, int64_t first_real) {
  const int64_t n = map.size(0);
  std::printf("\n%s (rows = query step, cols = attended step)\n", title);
  float max_v = 0;
  for (int64_t i = first_real; i < n; ++i)
    for (int64_t j = first_real; j <= i; ++j)
      max_v = std::max(max_v, map.at({i, j}));
  for (int64_t i = first_real; i < n; ++i) {
    std::printf("  %3lld |", static_cast<long long>(i));
    for (int64_t j = first_real; j <= i; ++j) {
      std::putchar(Shade(map.at({i, j}), max_v));
    }
    std::putchar('\n');
  }
}

void WriteCsv(const std::string& path, const Tensor& vanilla,
              const Tensor& iaab, int64_t first_real) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "model,row,col,weight\n");
  const int64_t n = vanilla.size(0);
  for (int64_t i = first_real; i < n; ++i) {
    for (int64_t j = first_real; j <= i; ++j) {
      std::fprintf(f, "SA,%lld,%lld,%.6f\n", static_cast<long long>(i),
                   static_cast<long long>(j), vanilla.at({i, j}));
      std::fprintf(f, "IAAB,%lld,%lld,%.6f\n", static_cast<long long>(i),
                   static_cast<long long>(j), iaab.at({i, j}));
    }
  }
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  auto cfg = data::WeeplacesLikeConfig(/*scale=*/0.3);
  data::Dataset dataset = data::GenerateSynthetic(cfg);
  data::Split split = data::TrainTestSplit(dataset, {.max_seq_len = 32});

  core::StisanOptions base;
  base.poi_dim = 24;
  base.geo.dim = 8;
  base.num_blocks = 2;
  base.train.epochs = 3;
  base.train.num_negatives = 8;
  base.train.knn_neighborhood = 60;
  base.train.max_train_windows = 400;

  // Vanilla SAN variant (no TAPE, no relation matrix) vs full STiSAN.
  auto vanilla_opts = base;
  vanilla_opts.use_tape = false;
  vanilla_opts.attention_mode = core::AttentionMode::kVanilla;
  core::StisanModel vanilla(dataset, vanilla_opts);
  core::StisanModel stisan(dataset, base);
  std::printf("training vanilla SAN variant...\n");
  vanilla.Fit(dataset, split.train);
  std::printf("training STiSAN...\n");
  stisan.Fit(dataset, split.train);

  const auto& inst = split.test.front();
  Tensor map_sa =
      vanilla.AverageAttentionMap(inst.poi, inst.t, inst.first_real);
  Tensor map_iaab =
      stisan.AverageAttentionMap(inst.poi, inst.t, inst.first_real);

  PrintHeatmap("vanilla self-attention", map_sa, inst.first_real);
  PrintHeatmap("STiSAN IAAB", map_iaab, inst.first_real);

  if (argc > 1) {
    WriteCsv(argv[1], map_sa, map_iaab, inst.first_real);
  }
  return 0;
}
